package campaign

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/flow"
)

// mapTier is an in-memory Tier double with call accounting.
type mapTier struct {
	mu      sync.Mutex
	entries map[string]Entry
	loads   int
	stores  int
}

func newMapTier() *mapTier { return &mapTier{entries: map[string]Entry{}} }

func (t *mapTier) Load(key string) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loads++
	e, ok := t.entries[key]
	return e, ok
}

func (t *mapTier) Store(e Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stores++
	if _, exists := t.entries[e.Key]; !exists {
		t.entries[e.Key] = e
	}
}

// TestCacheTierLoadAndWriteThrough: an L1 miss consults the tier (a hit
// there fills L1 and skips the compute), and a fresh compute is written
// through before DoRecorded returns.
func TestCacheTierLoadAndWriteThrough(t *testing.T) {
	tier := newMapTier()
	c := NewCache(0)
	c.SetTier(tier)

	computes := 0
	want := &flow.Result{AreaUm2: 42}
	steps := []flow.StepRecord{{Step: "synth"}}
	res, _, hit, err := c.DoRecorded("k1", func() (*flow.Result, []flow.StepRecord, error) {
		computes++
		return want, steps, nil
	})
	if err != nil || hit || res != want || computes != 1 {
		t.Fatalf("cold compute: res=%v hit=%t computes=%d err=%v", res, hit, computes, err)
	}
	if tier.stores != 1 {
		t.Fatalf("write-through count = %d, want 1", tier.stores)
	}

	// A second cache (another "node") sharing the tier must serve the key
	// from the tier without computing, with the steps intact.
	c2 := NewCache(0)
	c2.SetTier(tier)
	res2, steps2, hit2, err := c2.DoRecorded("k1", func() (*flow.Result, []flow.StepRecord, error) {
		t.Fatal("tier hit must not compute")
		return nil, nil, nil
	})
	if err != nil || !hit2 || res2.AreaUm2 != 42 || len(steps2) != 1 {
		t.Fatalf("tier hit: res=%v hit=%t steps=%d err=%v", res2, hit2, len(steps2), err)
	}
	st := c2.Stats()
	if st.TierHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("tier-hit stats = %+v", st)
	}

	// Now in c2's L1: the tier is not consulted again.
	loadsBefore := tier.loads
	if _, _, hit, _ := c2.DoRecorded("k1", nil); !hit {
		t.Fatal("L1 must serve the filled entry")
	}
	if tier.loads != loadsBefore {
		t.Fatal("L1 hit must not touch the tier")
	}
}

// TestCacheTierFailedComputeNotStored: compute errors must reach neither
// L1 nor the tier.
func TestCacheTierFailedComputeNotStored(t *testing.T) {
	tier := newMapTier()
	c := NewCache(0)
	c.SetTier(tier)
	_, _, _, err := c.DoRecorded("bad", func() (*flow.Result, []flow.StepRecord, error) {
		return nil, nil, fmt.Errorf("tool crashed")
	})
	if err == nil {
		t.Fatal("compute error swallowed")
	}
	if tier.stores != 0 || len(tier.entries) != 0 || c.Len() != 0 {
		t.Fatalf("failed compute cached: tier=%d l1=%d", len(tier.entries), c.Len())
	}
}

// TestCacheStatsCoherentUnderStorm hammers Get/Put/DoRecorded/Stats/
// HitRate from many goroutines (run under -race) and checks every
// snapshot satisfies the counter invariants — the regression test for
// the torn reads the old per-atomic counters allowed.
func TestCacheStatsCoherentUnderStorm(t *testing.T) {
	c := NewCache(64)
	res := &flow.Result{AreaUm2: 1}
	const (
		workers = 8
		iters   = 300
	)
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot readers: every snapshot must be internally consistent,
	// and the counters must be monotone between consecutive snapshots.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var prev CacheStats
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Stats()
				if st.Coalesced > st.Hits {
					t.Errorf("snapshot torn: coalesced %d > hits %d", st.Coalesced, st.Hits)
					return
				}
				if st.TierHits > st.Hits {
					t.Errorf("snapshot torn: tier hits %d > hits %d", st.TierHits, st.Hits)
					return
				}
				if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Evictions < prev.Evictions {
					t.Errorf("counters went backwards: %+v after %+v", st, prev)
					return
				}
				if hr := c.HitRate(); hr < 0 || hr > 1 {
					t.Errorf("hit rate %f out of [0,1]", hr)
					return
				}
				prev = st
			}
		}()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", i%97)
				switch i % 3 {
				case 0:
					c.Get(key)
				case 1:
					c.Put(key, res, nil)
				default:
					c.DoRecorded(key, func() (*flow.Result, []flow.StepRecord, error) { //nolint:errcheck
						return res, nil, nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("storm performed no lookups")
	}
}
