package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/journal"
)

// journalCfg is the engine config the journal tests share: fault and
// hang injection plus the stage watchdog, so the crash-safety paths are
// exercised under the same adversity a real campaign sees. The retry
// budget is large enough that every point eventually completes, which
// (by the determinism contract) makes results bit-identical to the
// fault-free reference regardless of the fault schedule. Injected hangs
// are bounded (the tool recovers after 1 ms) and the watchdog deadline
// is generous, so a loaded -race machine never reaps a legitimately
// slow stage and exhausts the retry budget; the reap path itself is
// covered by TestWatchdogReapRetryConverges.
func journalCfg(workers int, jrn *Journal) Config {
	return Config{
		Workers:      workers,
		Journal:      jrn,
		Faults:       &flow.FaultInjector{Seed: 11, CrashRate: 0.06, LicenseDropRate: 0.05, HangRate: 0.05, HangFor: time.Millisecond},
		Retry:        Retry{Max: 40},
		StageTimeout: 5 * time.Second,
	}
}

// TestWatchdogReapRetryConverges: unbounded wedges reaped by the stage
// watchdog follow the retry path like any fault, and the campaign still
// converges to the fault-free reference. One worker keeps the scheduler
// from starving a guarded stage into a spurious reap on slow machines.
func TestWatchdogReapRetryConverges(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 1, 2)
	ctx := context.Background()
	want, err := New(Config{Workers: 1}).Run(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(Config{
		Workers:      1,
		Faults:       &flow.FaultInjector{Seed: 3, HangRate: 0.15},
		Retry:        Retry{Max: 60},
		StageTimeout: 150 * time.Millisecond,
	}).Run(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "watchdog-reap", got, want)
}

func openJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	jrn, err := OpenJournal(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return jrn
}

// journalKeys reopens a journal directory and returns the decoded entry
// keys plus the corrupt-record count.
func journalKeys(t *testing.T, dir string) (keys []string, corrupt int) {
	t.Helper()
	jrn := openJournal(t, dir)
	defer jrn.Close()
	entries, corrupt := jrn.Entries()
	for _, e := range entries {
		keys = append(keys, e.Key)
	}
	return keys, corrupt
}

// copyJournal clones a journal directory so a truncation experiment
// never disturbs the pristine source.
func copyJournal(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "journal")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func assertSameResults(t *testing.T, name string, got, want []*flow.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] == nil {
			t.Fatalf("%s: point %d missing", name, i)
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: point %d diverged from uninterrupted reference", name, i)
		}
	}
}

// TestKillResumeSoak is the acceptance soak: a journaled campaign is
// "killed" at many byte offsets — every kill leaves a different torn
// journal — and resumed at worker counts 1 and 8. Every resume must
// reproduce the uninterrupted run bit-identically, and the journal must
// end holding every point exactly once: nothing lost, nothing
// duplicated.
func TestKillResumeSoak(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 2, 3)
	ctx := context.Background()

	want, err := New(Config{Workers: 2}).Run(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}

	// A complete journaled run builds the journal image the "kills"
	// truncate. Its own results must already match the reference.
	base := filepath.Join(t.TempDir(), "journal")
	jrn := openJournal(t, base)
	got, st, err := New(journalCfg(4, jrn)).Resume(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if jerr := jrn.Err(); jerr != nil {
		t.Fatal(jerr)
	}
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 || st.Corrupt != 0 {
		t.Fatalf("fresh journal replayed %+v, want zeros", st)
	}
	assertSameResults(t, "journaled run", got, want)

	segs, err := filepath.Glob(filepath.Join(base, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments (err=%v)", err)
	}
	seg := segs[len(segs)-1]
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()

	// Kill points: nothing survives, header-only, five mid-file tears
	// (almost surely mid-record), a tear just inside the final record,
	// and no tear at all.
	offsets := []int64{0, 8}
	for k := int64(1); k <= 5; k++ {
		offsets = append(offsets, 8+k*(size-8)/6)
	}
	offsets = append(offsets, size-3, size)

	wantKeys := map[string]bool{}
	for _, p := range pts {
		wantKeys[p.cacheKey()] = true
	}

	for _, off := range offsets {
		for _, workers := range []int{1, 8} {
			dir := copyJournal(t, base)
			seg := filepath.Join(dir, filepath.Base(seg))
			if err := os.Truncate(seg, off); err != nil {
				t.Fatal(err)
			}
			jrn := openJournal(t, dir)
			got, st, err := New(journalCfg(workers, jrn)).Resume(ctx, pts)
			if err != nil {
				t.Fatalf("kill@%d workers=%d: %v", off, workers, err)
			}
			if jerr := jrn.Err(); jerr != nil {
				t.Fatalf("kill@%d workers=%d: journal error %v", off, workers, jerr)
			}
			if err := jrn.Close(); err != nil {
				t.Fatal(err)
			}
			if st.Corrupt != 0 || st.SkippedUnknown != 0 || st.Duplicate != 0 {
				t.Fatalf("kill@%d workers=%d: resume stats %+v", off, workers, st)
			}
			if st.Replayed+0 > len(pts) {
				t.Fatalf("kill@%d workers=%d: replayed %d of %d points", off, workers, st.Replayed, len(pts))
			}
			assertSameResults(t, "resume", got, want)

			// The healed journal must hold every point exactly once:
			// replayed survivors kept, truncated victims re-journaled,
			// no key twice.
			keys, corrupt := journalKeys(t, dir)
			if corrupt != 0 {
				t.Fatalf("kill@%d workers=%d: %d corrupt entries after resume", off, workers, corrupt)
			}
			seen := map[string]bool{}
			for _, k := range keys {
				if seen[k] {
					t.Fatalf("kill@%d workers=%d: key journaled twice", off, workers)
				}
				seen[k] = true
				if !wantKeys[k] {
					t.Fatalf("kill@%d workers=%d: unknown key in journal", off, workers)
				}
			}
			if len(seen) != len(pts) {
				t.Fatalf("kill@%d workers=%d: journal holds %d points, want %d", off, workers, len(seen), len(pts))
			}
		}
	}
}

// TestCancelledCampaignResumes kills a journaled campaign the
// cooperative way — context cancellation mid-flight — and resumes it.
func TestCancelledCampaignResumes(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 2, 3)
	bg := context.Background()
	want, err := New(Config{Workers: 2}).Run(bg, pts)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "journal")
	jrn := openJournal(t, dir)
	ctx, cancel := context.WithCancel(bg)
	var fired bool
	cfg := journalCfg(2, jrn)
	cfg.Observer = flow.ObserverFunc(func(rec flow.StepRecord) {
		// Pull the plug the first time any run reaches signoff.
		if rec.Step == "sta" && !fired {
			fired = true
			cancel()
		}
	})
	if _, _, err := New(cfg).Resume(ctx, pts); err == nil {
		t.Fatal("cancelled campaign reported success")
	}
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}

	jrn2 := openJournal(t, dir)
	defer jrn2.Close()
	got, st, err := New(journalCfg(8, jrn2)).Resume(bg, pts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 0 || st.SkippedUnknown != 0 {
		t.Fatalf("resume stats %+v", st)
	}
	assertSameResults(t, "resume-after-cancel", got, want)
}

// TestResumeEmptyJournal: resuming with nothing on disk is just a run.
func TestResumeEmptyJournal(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 1, 3)
	want, err := New(Config{Workers: 1}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	jrn := openJournal(t, filepath.Join(t.TempDir(), "journal"))
	defer jrn.Close()
	got, st, err := New(journalCfg(2, jrn)).Resume(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if st != (ResumeStats{}) {
		t.Fatalf("stats %+v, want zero", st)
	}
	assertSameResults(t, "empty-journal", got, want)
}

// TestResumeTornTailOnlyJournal: a journal whose only content is a torn
// record — the crash hit during the very first append — must resume as
// if empty.
func TestResumeTornTailOnlyJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	img := append([]byte("SPRWAL1\n"), 0xff, 0x01, 0x02) // header + 3 torn bytes
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), img, 0o644); err != nil {
		t.Fatal(err)
	}
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 1, 2)
	want, err := New(Config{Workers: 1}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	jrn := openJournal(t, dir)
	defer jrn.Close()
	if jrn.Stats().TornTails != 1 {
		t.Fatalf("recovery stats %+v, want one torn tail", jrn.Stats())
	}
	got, st, err := New(journalCfg(2, jrn)).Resume(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if st != (ResumeStats{}) {
		t.Fatalf("stats %+v, want zero", st)
	}
	assertSameResults(t, "torn-tail-only", got, want)
}

// TestResumeChangedSpecSkipsUnknown: resuming with a narrower campaign
// than the one that crashed must serve the surviving overlap and count
// — not fail on — the journal entries that no longer match any point.
func TestResumeChangedSpecSkipsUnknown(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 2, 3)
	ctx := context.Background()

	dir := filepath.Join(t.TempDir(), "journal")
	jrn := openJournal(t, dir)
	if _, _, err := New(journalCfg(2, jrn)).Resume(ctx, pts); err != nil {
		t.Fatal(err)
	}
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}

	narrowed := pts[:3]
	want, err := New(Config{Workers: 1}).Run(ctx, narrowed)
	if err != nil {
		t.Fatal(err)
	}
	jrn2 := openJournal(t, dir)
	defer jrn2.Close()
	got, st, err := New(journalCfg(2, jrn2)).Resume(ctx, narrowed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 3 || st.SkippedUnknown != 3 || st.Corrupt != 0 {
		t.Fatalf("stats %+v, want 3 replayed, 3 skipped", st)
	}
	assertSameResults(t, "narrowed-spec", got, want)
	// The skipped entries stay on disk — a later resume with the full
	// spec can still use them.
	keys, _ := journalKeys(t, dir)
	if len(keys) != len(pts) {
		t.Fatalf("journal shrank to %d entries, want %d preserved", len(keys), len(pts))
	}
}

// TestDoubleResumeIdempotent: resuming an already-complete campaign
// serves everything from the journal, appends nothing, and replays one
// step-record set per point to the observer — twice in a row.
func TestDoubleResumeIdempotent(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 2, 3)
	ctx := context.Background()
	want, err := New(Config{Workers: 2}).Run(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "journal")
	jrn := openJournal(t, dir)
	if _, _, err := New(journalCfg(2, jrn)).Resume(ctx, pts); err != nil {
		t.Fatal(err)
	}
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		jrn := openJournal(t, dir)
		synthRecords := 0
		cfg := journalCfg(1, jrn)
		cfg.Observer = flow.ObserverFunc(func(rec flow.StepRecord) {
			if rec.Step == "synth" {
				synthRecords++
			}
		})
		got, st, err := New(cfg).Resume(ctx, pts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := jrn.Close(); err != nil {
			t.Fatal(err)
		}
		if st.Replayed != len(pts) || st.Corrupt != 0 || st.SkippedUnknown != 0 {
			t.Fatalf("round %d: stats %+v, want %d replayed", round, st, len(pts))
		}
		if synthRecords != len(pts) {
			t.Fatalf("round %d: observer saw %d synth records, want %d", round, synthRecords, len(pts))
		}
		assertSameResults(t, "double-resume", got, want)
		keys, _ := journalKeys(t, dir)
		if len(keys) != len(pts) {
			t.Fatalf("round %d: journal grew to %d entries, want %d", round, len(keys), len(pts))
		}
	}
}

// TestJournalAppendFailureIsNonFatal: losing durability mid-campaign
// (disk full, volume gone) must not lose the live computation — the
// campaign completes and the failure is surfaced via Journal.Err.
func TestJournalAppendFailureIsNonFatal(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 1, 2)
	jrn := openJournal(t, filepath.Join(t.TempDir(), "journal"))
	// Closing the underlying log makes every append fail.
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := New(Config{Workers: 2, Journal: jrn}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r == nil {
			t.Fatalf("point %d missing", i)
		}
	}
	if jrn.Err() == nil {
		t.Fatal("append failure not surfaced via Err")
	}
}
