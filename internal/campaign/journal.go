// Campaign journaling: a write-ahead log of completed points, so a
// campaign killed at any moment — power cut, kill -9, scheduler
// preemption — resumes with every finished flow run intact instead of
// recomputing hours of tool time. This is the paper's "reducing time and
// effort" applied to the orchestration layer itself: the expensive
// artifact of a campaign is the set of completed runs, and the journal
// makes that set durable.
package campaign

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/flow"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Entry is one journaled point: the memo key that identifies it plus
// everything a resumed campaign needs to serve the point from cache —
// the flow result and the step records its compute emitted (so the
// Observer replay of a resumed point matches a memoized one exactly).
type Entry struct {
	Key   string
	Res   *flow.Result
	Steps []flow.StepRecord
	// Spec is the run's speculation outcome (nil if it did not
	// speculate). Replaying it at resume re-counts the same predictor
	// hit/miss counters the live run counted, so a resumed campaign's
	// accounting matches an uninterrupted one. Journals written before
	// speculation existed decode with Spec nil.
	Spec *flow.SpecStats
}

// EncodeEntry serializes an entry for the durable log or the network
// result store — the one wire format a journaled point has, so a store
// node and a local journal can exchange records byte-for-byte.
func EncodeEntry(e Entry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("campaign: encode entry: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEntry parses an encoded entry, rejecting structurally empty
// records (no key or no result) the same way journal recovery does.
func DecodeEntry(data []byte) (Entry, error) {
	var e Entry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return Entry{}, fmt.Errorf("campaign: decode entry: %w", err)
	}
	if e.Key == "" || e.Res == nil {
		return Entry{}, fmt.Errorf("campaign: decode entry: missing key or result")
	}
	return e, nil
}

// Journal is the campaign-facing wrapper over the durable log: it
// serializes entries with gob, deduplicates appends by key (a point
// replayed from the journal is marked seen and never re-appended), and
// turns append failures into a sticky error surfaced via Err — the
// campaign itself keeps running, because losing durability must not
// lose the live computation too.
//
// Lifecycle contract: Close waits for any in-flight record to land
// (both hold the journal mutex), a record after Close is dropped but
// surfaced via Err — never silently lost — and closing twice is safe
// and returns the first close's outcome.
type Journal struct {
	log *journal.Log

	mu       sync.Mutex
	seen     map[string]struct{}
	err      error
	closed   bool
	closeErr error
}

// OpenJournal opens (or creates) the campaign journal in dir, recovering
// any torn tail left by a crash. The journal.Options choose the fsync
// policy; the zero value is fully durable (fsync every append).
func OpenJournal(dir string, opts journal.Options) (*Journal, error) {
	log, err := journal.Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	return &Journal{log: log, seen: map[string]struct{}{}}, nil
}

// Entries decodes every recovered record. Records that fail to decode —
// a journal written by an incompatible build, or garbage that survived
// the CRC by astronomical luck — are skipped and counted, never fatal:
// a corrupt entry costs one recompute, not the campaign.
func (j *Journal) Entries() (entries []Entry, corrupt int) {
	for _, rec := range j.log.Records() {
		e, err := DecodeEntry(rec)
		if err != nil {
			corrupt++
			continue
		}
		entries = append(entries, e)
	}
	if corrupt > 0 {
		metrics.Add("campaign.journal.corrupt", int64(corrupt))
	}
	return entries, corrupt
}

// Stats exposes the recovery statistics of the underlying log.
func (j *Journal) Stats() journal.RecoveryStats { return j.log.Stats() }

// record journals one completed point. Appends are best-effort and
// deduplicated: a key already journaled (or replayed at resume) is
// skipped, and an append failure is remembered in Err but does not fail
// the campaign.
func (j *Journal) record(key string, res *flow.Result, steps []flow.StepRecord, spec *flow.SpecStats) {
	sp := trace.Begin("campaign.journal.append")
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		// The entry is lost to durability (the campaign result itself is
		// fine); a silent drop here would make Err lie about completeness.
		j.fail(fmt.Errorf("campaign: journal append after close: %w", journal.ErrClosed))
		sp.EndWith(trace.Failed)
		return
	}
	if _, dup := j.seen[key]; dup {
		metrics.Add("campaign.journal.duplicate", 1)
		sp.EndWith(trace.CacheHit)
		return
	}
	buf, err := EncodeEntry(Entry{Key: key, Res: res, Steps: steps, Spec: spec})
	if err != nil {
		j.fail(err)
		sp.EndWith(trace.Failed)
		return
	}
	if err := j.log.Append(buf); err != nil {
		j.fail(fmt.Errorf("campaign: journal append: %w", err))
		sp.EndWith(trace.Failed)
		return
	}
	j.seen[key] = struct{}{}
	metrics.Add("campaign.journal.appended", 1)
	sp.SetInt("bytes", int64(len(buf)))
	sp.End()
}

// markSeen suppresses future appends for a key that is already durable
// (it was replayed out of the journal at resume).
func (j *Journal) markSeen(key string) {
	j.mu.Lock()
	j.seen[key] = struct{}{}
	j.mu.Unlock()
}

// fail records the first append-path error. Caller holds j.mu.
func (j *Journal) fail(err error) {
	if j.err == nil {
		j.err = err
	}
	metrics.Add("campaign.journal.append_err", 1)
}

// Err returns the first append-path error, if any. A non-nil Err means
// the campaign's results are complete in memory but the journal may be
// missing points; callers that require durability should surface it.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Sync forces the journal to stable storage (meaningful under the
// SyncInterval/SyncNever policies).
func (j *Journal) Sync() error { return j.log.Sync() }

// Close syncs and closes the underlying log. It serializes with
// in-flight record calls (whichever holds the mutex first wins: an
// append that beat Close is durable, one that lost is dropped and
// surfaced via Err). Closing an already-closed journal is a no-op that
// returns the first Close's error.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.closeErr
	}
	j.closed = true
	j.closeErr = j.log.Close()
	return j.closeErr
}

// ResumeStats reports what a resume replayed out of the journal.
type ResumeStats struct {
	// Replayed is the number of journal entries whose key matched a
	// requested point and was seeded into the cache.
	Replayed int
	// SkippedUnknown is the number of entries that matched no requested
	// point — a changed campaign spec; they are preserved on disk but
	// not served.
	SkippedUnknown int
	// Corrupt is the number of records that failed to decode.
	Corrupt int
	// Duplicate is the number of decodable entries whose key had already
	// been replayed (e.g. the same point journaled by two pre-crash
	// processes); first entry wins.
	Duplicate int
}

// Replay seeds the engine's cache with every journaled entry whose key
// matches one of pts, and marks those keys seen so the resumed campaign
// never re-appends them. Entries matching no requested point are
// skipped and counted (a resumed campaign may have a narrower spec than
// the one that crashed); corrupt records are skipped and counted. The
// engine must have been built with both Journal and Cache (Config.New
// auto-creates the cache when a journal is set).
func (e *Engine) Replay(pts []Point) (ResumeStats, error) {
	if e.journal == nil {
		return ResumeStats{}, fmt.Errorf("campaign: Replay: engine has no journal")
	}
	if e.cache == nil {
		return ResumeStats{}, fmt.Errorf("campaign: Replay: engine has no cache")
	}
	sp := trace.Begin("campaign.journal.replay")
	defer sp.End()
	known := make(map[string]struct{}, len(pts))
	for _, p := range pts {
		if p.DesignKey != "" {
			known[p.cacheKey()] = struct{}{}
		}
	}
	entries, corrupt := e.journal.Entries()
	st := ResumeStats{Corrupt: corrupt}
	for _, ent := range entries {
		if _, ok := known[ent.Key]; !ok {
			st.SkippedUnknown++
			metrics.Add("campaign.journal.skipped", 1)
			continue
		}
		if !e.cache.Put(ent.Key, ent.Res, ent.Steps) {
			st.Duplicate++
			e.journal.markSeen(ent.Key)
			continue
		}
		e.journal.markSeen(ent.Key)
		st.Replayed++
		metrics.Add("campaign.journal.replayed", 1)
		// Re-count the journaled speculation outcome: the resumed
		// campaign's predictor accounting must match the uninterrupted
		// run's, and the replayed point will never recompute to count
		// itself.
		countSpec(ent.Spec)
	}
	return st, nil
}

// Resume is Run preceded by a journal replay: every point already
// completed by the interrupted campaign is served from the journal
// (with its step records replayed to the Observer, like any memoized
// point), and only the remainder is computed. Because a flow run is a
// pure function of its point and results land by index, the resumed
// output is bit-identical to an uninterrupted run at any worker count.
func (e *Engine) Resume(ctx context.Context, pts []Point) ([]*flow.Result, ResumeStats, error) {
	st, err := e.Replay(pts)
	if err != nil {
		return nil, st, err
	}
	res, err := e.Run(ctx, pts)
	return res, st, err
}
