package campaign

import (
	"sync"

	"repro/internal/flow"
	"repro/internal/metrics"
)

// shardCount is a power of two so shard selection is a mask.
const shardCount = 32

// Tier is a second memo tier behind the in-process cache — typically a
// network result store shared by every node of a distributed campaign
// (see internal/dist). DoRecorded consults it after an L1 miss and
// writes freshly computed entries through to it before publishing them
// to coalesced waiters, so by the time any caller sees a result the
// shared tier already holds it.
//
// Load returns the entry for a key if the tier has it; Store offers a
// computed entry to the tier (best-effort: the tier may drop it, e.g.
// on a network fault — the computation itself is already safe in L1).
// Implementations must be safe for concurrent use.
type Tier interface {
	Load(key string) (Entry, bool)
	Store(e Entry)
}

// Cache memoizes flow results by content key: hash(design fingerprint,
// Options) -> *flow.Result. Identical option points recur constantly
// across the paper's studies (probe runs, shared arms, repeated seeds
// across figure regenerations), and a flow run is deterministic in its
// inputs, so recomputing one is pure waste — the Simopt observation that
// caching CAD-flow pass results is the biggest TAT lever.
//
// The cache is sharded (mutex per shard) and coalesces concurrent
// requests for the same key into a single computation. Cached results
// are shared: callers must treat them — including Result.Netlist — as
// immutable. Hit/miss/eviction counts live behind one counter mutex so
// Stats and HitRate always see a coherent snapshot (no torn reads
// between related counters); they are mirrored into the process-wide
// metrics registry (campaign.cache.* counters, visible on the METRICS
// server's /stats endpoint).
type Cache struct {
	capPerShard int
	shards      [shardCount]cacheShard
	tier        Tier

	// cmu guards every counter below as one unit: a Stats snapshot taken
	// between a miss increment and the matching insert must still satisfy
	// the counters' mutual invariants (hits+misses = lookups completed,
	// coalesced <= hits). Counter updates are two orders of magnitude
	// cheaper than the flow runs they count, so one mutex is free.
	cmu        sync.Mutex
	hits       int64
	misses     int64
	coalesced  int64
	evictions  int64
	tierHits   int64
	tierStores int64
}

type cacheShard struct {
	mu       sync.RWMutex
	entries  map[string]*cacheEntry
	order    []string // insertion order, for FIFO eviction
	inflight map[string]*inflightCall
}

// cacheEntry pairs a memoized result with the step records its compute
// emitted, so a cache hit can replay the records to the campaign's
// Observer — a memoized point is then observationally identical to a
// computed one.
type cacheEntry struct {
	res   *flow.Result
	steps []flow.StepRecord
}

type inflightCall struct {
	done  chan struct{}
	res   *flow.Result
	steps []flow.StepRecord
	err   error
}

// NewCache creates a memo cache holding up to capacity results
// (capacity <= 0 means unbounded). Eviction is FIFO per shard: flow
// campaigns sweep forward through option space, so the oldest points are
// the least likely to recur.
func NewCache(capacity int) *Cache {
	c := &Cache{}
	if capacity > 0 {
		c.capPerShard = (capacity + shardCount - 1) / shardCount
		if c.capPerShard < 1 {
			c.capPerShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i].entries = map[string]*cacheEntry{}
		c.shards[i].inflight = map[string]*inflightCall{}
	}
	return c
}

// SetTier attaches a shared second tier consulted on L1 misses and
// written through on computes. Call before the cache is in use (the
// field is not synchronized against concurrent lookups).
func (c *Cache) SetTier(t Tier) { c.tier = t }

func (c *Cache) shard(key string) *cacheShard {
	// FNV-1a over the key, folded to a shard index.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h&(shardCount-1)]
}

// count applies one coherent counter update.
func (c *Cache) count(f func(c *Cache)) {
	c.cmu.Lock()
	f(c)
	c.cmu.Unlock()
}

func (c *Cache) countHit(coalesced bool) {
	c.count(func(c *Cache) {
		c.hits++
		if coalesced {
			c.coalesced++
		}
	})
	metrics.Add("campaign.cache.hit", 1)
	if coalesced {
		metrics.Add("campaign.cache.coalesced", 1)
	}
}

// Get returns the cached result for a key, if present. Get reads the
// in-process tier only; the shared tier is consulted by DoRecorded,
// where a miss has a compute to coalesce against.
func (c *Cache) Get(key string) (*flow.Result, bool) {
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.entries[key]
	s.mu.RUnlock()
	if ok {
		c.countHit(false)
		return e.res, true
	}
	c.count(func(c *Cache) { c.misses++ })
	metrics.Add("campaign.cache.miss", 1)
	return nil, false
}

// Put seeds the cache with an already-computed result and its step
// records — the journal-replay path, where results come off disk rather
// than out of a flow run. An existing entry wins (the journal can only
// ever disagree with a live compute by being stale), and the returned
// bool reports whether the entry was stored.
func (c *Cache) Put(key string, res *flow.Result, steps []flow.StepRecord) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[key]; exists {
		return false
	}
	c.insert(s, key, &cacheEntry{res: res, steps: steps})
	metrics.Add("campaign.cache.seeded", 1)
	return true
}

// Do returns the cached result for key, computing and storing it on a
// miss. Concurrent Do calls with the same key coalesce: one computes,
// the rest wait and share the result (counted as hits, plus a coalesced
// marker).
func (c *Cache) Do(key string, compute func() *flow.Result) *flow.Result {
	res, _, _, _ := c.DoRecorded(key, func() (*flow.Result, []flow.StepRecord, error) { //nolint:errcheck // compute never errors
		return compute(), nil, nil
	})
	return res
}

// DoRecorded is Do with step-record capture, failure awareness and tier
// awareness: compute returns the result plus the step records it
// emitted, which are stored alongside the result and handed back on
// every future hit (hit=true) so callers can replay them to their
// Observer. With a Tier attached, an L1 miss first asks the tier —
// a tier hit fills L1 and returns hit=true without computing — and a
// fresh compute is written through to the tier before the call returns.
// A compute error is propagated to the caller and to every coalesced
// waiter, and nothing is cached — a failed or aborted run must never be
// served as a memoized result.
func (c *Cache) DoRecorded(key string, compute func() (*flow.Result, []flow.StepRecord, error)) (res *flow.Result, steps []flow.StepRecord, hit bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		c.countHit(false)
		return e.res, e.steps, true, nil
	}
	if call, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-call.done
		if call.err != nil {
			// The computing caller failed; surface its error so the
			// waiter's own retry loop can re-attempt (and coalesce
			// again) rather than treating the point as memoized-failed.
			return nil, nil, false, call.err
		}
		c.countHit(true)
		return call.res, call.steps, true, nil
	}
	call := &inflightCall{done: make(chan struct{})}
	s.inflight[key] = call
	s.mu.Unlock()

	if c.tier != nil {
		if e, ok := c.tier.Load(key); ok {
			// Served by the shared tier: fill L1 and resolve the waiters.
			// This is a hit for this caller too — nothing was computed, so
			// the engine must not journal or re-count it as fresh work.
			call.res, call.steps = e.Res, e.Steps
			c.count(func(c *Cache) { c.hits++; c.tierHits++ })
			metrics.Add("campaign.cache.hit", 1)
			metrics.Add("campaign.cache.tier_hit", 1)
			s.mu.Lock()
			delete(s.inflight, key)
			c.insert(s, key, &cacheEntry{res: call.res, steps: call.steps})
			s.mu.Unlock()
			close(call.done)
			return call.res, call.steps, true, nil
		}
	}

	c.count(func(c *Cache) { c.misses++ })
	metrics.Add("campaign.cache.miss", 1)
	call.res, call.steps, call.err = compute()

	if call.err == nil && c.tier != nil {
		// Write through before publishing: when any caller of this key
		// returns, the shared tier already holds the entry — the contract
		// a distributed coordinator relies on when it fetches results by
		// key after a worker acknowledges a point.
		c.tier.Store(Entry{Key: key, Res: call.res, Steps: call.steps})
		c.count(func(c *Cache) { c.tierStores++ })
		metrics.Add("campaign.cache.tier_store", 1)
	}

	s.mu.Lock()
	delete(s.inflight, key)
	if call.err == nil {
		c.insert(s, key, &cacheEntry{res: call.res, steps: call.steps})
	}
	s.mu.Unlock()
	close(call.done)
	return call.res, call.steps, false, call.err
}

// insert stores an entry, evicting the shard's oldest if at capacity.
// Caller holds s.mu.
func (c *Cache) insert(s *cacheShard, key string, e *cacheEntry) {
	if _, exists := s.entries[key]; !exists {
		if c.capPerShard > 0 && len(s.order) >= c.capPerShard {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.entries, oldest)
			c.count(func(c *Cache) { c.evictions++ })
			metrics.Add("campaign.cache.evicted", 1)
		}
		s.order = append(s.order, key)
	}
	s.entries[key] = e
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats is a point-in-time counter snapshot. The counters are
// captured atomically as a set, so their invariants hold in every
// snapshot: Coalesced <= Hits, TierHits <= Hits, and Hits+Misses is the
// number of completed lookups. Entries is gathered per shard afterwards
// and may lag the counters by in-flight inserts.
type CacheStats struct {
	Hits       int64
	Misses     int64
	Coalesced  int64 // subset of Hits served by waiting on an in-flight compute
	Evictions  int64
	TierHits   int64 // subset of Hits served by the shared tier
	TierStores int64 // computes written through to the shared tier
	Entries    int
}

// Stats snapshots the cache counters coherently.
func (c *Cache) Stats() CacheStats {
	c.cmu.Lock()
	st := CacheStats{
		Hits:       c.hits,
		Misses:     c.misses,
		Coalesced:  c.coalesced,
		Evictions:  c.evictions,
		TierHits:   c.tierHits,
		TierStores: c.tierStores,
	}
	c.cmu.Unlock()
	st.Entries = c.Len()
	return st
}

// HitRate returns hits / (hits + misses), or 0 before any lookup. The
// ratio is computed from one coherent snapshot, so it can never exceed
// 1 even mid-storm.
func (c *Cache) HitRate() float64 {
	c.cmu.Lock()
	h, m := c.hits, c.misses
	c.cmu.Unlock()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
