package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flow"
)

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(0)
	mk := func() *flow.Result { return &flow.Result{AreaUm2: 1} }
	if _, ok := c.Get("a"); ok {
		t.Fatal("phantom entry")
	}
	r1 := c.Do("a", mk)
	r2 := c.Do("a", mk)
	if r1 != r2 {
		t.Fatal("second Do recomputed")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry lost")
	}
	st := c.Stats()
	// Get(miss) + Do(miss) + Do(hit) + Get(hit).
	if st.Misses != 2 || st.Hits != 2 {
		t.Errorf("stats %+v, want 2 hits 2 misses", st)
	}
	if st.Entries != 1 {
		t.Errorf("entries %d", st.Entries)
	}
	if got := c.HitRate(); got != 0.5 {
		t.Errorf("hit rate %v", got)
	}
}

func TestCacheEviction(t *testing.T) {
	// Capacity below shardCount clamps to one entry per shard; keys that
	// land on the same shard evict FIFO.
	c := NewCache(1)
	var aKey, bKey string
	// Find two keys on the same shard.
	base := c.shard("k0")
	aKey = "k0"
	for i := 1; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == base {
			bKey = k
			break
		}
	}
	c.Do(aKey, func() *flow.Result { return &flow.Result{} })
	c.Do(bKey, func() *flow.Result { return &flow.Result{} })
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
	if _, ok := c.Get(aKey); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, ok := c.Get(bKey); !ok {
		t.Error("newest entry missing")
	}
}

func TestCacheSharding(t *testing.T) {
	c := NewCache(0)
	used := map[*cacheShard]bool{}
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("key-%d", i)
		used[c.shard(k)] = true
		c.Do(k, func() *flow.Result { return &flow.Result{} })
	}
	if len(used) < shardCount/2 {
		t.Errorf("only %d of %d shards used by 256 keys — bad spread", len(used), shardCount)
	}
	if c.Len() != 256 {
		t.Errorf("len %d", c.Len())
	}
}

// TestCacheCoalescesConcurrentComputes: N goroutines asking for the same
// key must trigger exactly one compute.
func TestCacheCoalescesConcurrentComputes(t *testing.T) {
	c := NewCache(0)
	var computes atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*flow.Result, 8)
	run := func(i int) {
		defer wg.Done()
		results[i] = c.Do("shared", func() *flow.Result {
			close(entered)
			<-gate // hold the computation so others pile up
			computes.Add(1)
			return &flow.Result{AreaUm2: 42}
		})
	}
	wg.Add(1)
	go run(0)
	<-entered // the key is in flight; everyone else must coalesce or hit
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go run(i)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters reach the in-flight call
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computes for one key", got)
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("goroutine %d got a different result pointer", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 7 {
		t.Errorf("stats %+v, want 1 miss / 7 hits", st)
	}
	if st.Coalesced == 0 {
		t.Error("no waiter coalesced onto the in-flight compute")
	}
}

// TestDoRecordedErrorNeverCached: a failed compute must not be
// memoized — the retry loop depends on the next attempt recomputing —
// and coalesced waiters must see the error rather than a phantom hit.
func TestDoRecordedErrorNeverCached(t *testing.T) {
	c := NewCache(0)
	boom := fmt.Errorf("tool crash")
	var calls atomic.Int32
	fail := func() (*flow.Result, []flow.StepRecord, error) {
		calls.Add(1)
		return nil, nil, boom
	}

	if _, _, hit, err := c.DoRecorded("k", fail); hit || err != boom {
		t.Fatalf("hit=%t err=%v, want miss with error", hit, err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	// Second attempt recomputes, and success after failure caches.
	res, steps, hit, err := c.DoRecorded("k", func() (*flow.Result, []flow.StepRecord, error) {
		calls.Add(1)
		return &flow.Result{AreaUm2: 2}, []flow.StepRecord{{Step: "synth"}}, nil
	})
	if err != nil || hit || res.AreaUm2 != 2 || len(steps) != 1 {
		t.Fatalf("recovery compute: res=%+v steps=%d hit=%t err=%v", res, len(steps), hit, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2", calls.Load())
	}
	got, gotSteps, hit, err := c.DoRecorded("k", fail)
	if err != nil || !hit || got.AreaUm2 != 2 || len(gotSteps) != 1 {
		t.Fatalf("post-recovery lookup: res=%+v hit=%t err=%v", got, hit, err)
	}
	if calls.Load() != 2 {
		t.Fatal("cached entry recomputed")
	}
}

// TestDoRecordedCoalescedError: concurrent callers coalesced behind a
// failing compute all receive the error; none of them is handed a nil
// result marked as a hit.
func TestDoRecordedCoalescedError(t *testing.T) {
	c := NewCache(0)
	boom := fmt.Errorf("license lost")
	started := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int32

	go c.DoRecorded("k", func() (*flow.Result, []flow.StepRecord, error) {
		computes.Add(1)
		close(started)
		<-release
		return nil, nil, boom
	})
	<-started

	const waiters = 4
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, hits[i], errs[i] = c.DoRecorded("k", func() (*flow.Result, []flow.StepRecord, error) {
				computes.Add(1)
				return nil, nil, boom
			})
		}(i)
	}
	// Give the waiters a moment to pile up behind the inflight call,
	// then let it fail.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if hits[i] {
			t.Fatalf("waiter %d reported a hit on a failed compute", i)
		}
		if errs[i] != boom {
			t.Fatalf("waiter %d err = %v, want the compute error", i, errs[i])
		}
	}
	if c.Len() != 0 {
		t.Fatal("failed compute left a cache entry")
	}
}
