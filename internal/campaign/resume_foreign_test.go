package campaign

import (
	"context"
	"reflect"
	"testing"
)

// TestResumeSkipsForeignEntries: a journal holding entries for points
// outside the resumed spec (a narrowed campaign, or a directory shared
// with another sweep) must skip them — counted, preserved on disk, and
// never seeded into the cache where a colliding lookup could serve a
// stale result.
func TestResumeSkipsForeignEntries(t *testing.T) {
	design := tinyDesign(1)
	key := KeyFor(design)
	dir := t.TempDir()

	// First campaign journals the wide spec: 2 freqs x 2 seeds.
	wide := sweepPoints(design, key, 2, 2)
	jrn := openJournal(t, dir)
	eng := New(Config{Workers: 2, Journal: jrn})
	wideRes, err := eng.Run(context.Background(), wide)
	if err != nil {
		t.Fatal(err)
	}
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with a narrowed spec: only the first frequency's points.
	narrow := wide[:2]
	jrn2 := openJournal(t, dir)
	defer jrn2.Close()
	cache := NewCache(0)
	eng2 := New(Config{Workers: 2, Journal: jrn2, Cache: cache})
	res, st, err := eng2.Resume(context.Background(), narrow)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != len(narrow) {
		t.Fatalf("replayed %d, want %d", st.Replayed, len(narrow))
	}
	if st.SkippedUnknown != len(wide)-len(narrow) {
		t.Fatalf("skipped %d foreign entries, want %d", st.SkippedUnknown, len(wide)-len(narrow))
	}
	if st.Corrupt != 0 || st.Duplicate != 0 {
		t.Fatalf("unexpected resume stats: %+v", st)
	}
	// Replayed results match the original run bit-for-bit.
	for i := range narrow {
		if !reflect.DeepEqual(res[i], wideRes[i]) {
			t.Fatalf("point %d changed across resume", i)
		}
	}
	// The foreign entries never touched the cache: only the narrow
	// keys are resident, and every narrow point was a replay hit (no
	// recompute).
	cs := cache.Stats()
	if cs.Entries != len(narrow) {
		t.Fatalf("cache holds %d entries, want %d (foreign keys must not be seeded)", cs.Entries, len(narrow))
	}
	for _, p := range wide[2:] {
		if _, ok := cache.Get(p.cacheKey()); ok {
			t.Fatalf("foreign key %q was seeded into the cache", p.cacheKey())
		}
	}
	if cs.Misses != 0 {
		t.Fatalf("resume recomputed %d points, want 0", cs.Misses)
	}

	// The skipped entries are preserved on disk for the wide spec: a
	// later wide resume replays all of them.
	if err := jrn2.Close(); err != nil {
		t.Fatal(err)
	}
	jrn3 := openJournal(t, dir)
	defer jrn3.Close()
	eng3 := New(Config{Workers: 2, Journal: jrn3})
	res3, st3, err := eng3.Resume(context.Background(), wide)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Replayed != len(wide) || st3.SkippedUnknown != 0 {
		t.Fatalf("wide resume stats: %+v", st3)
	}
	for i := range wide {
		if !reflect.DeepEqual(res3[i], wideRes[i]) {
			t.Fatalf("wide resume point %d diverged", i)
		}
	}
}
