package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

// TestCampaignTraceCoverage runs a real seeded campaign under an armed
// tracer and checks the resulting Chrome trace end-to-end: it must be
// valid trace_event JSON whose spans cover the whole stack — campaign
// run/points, flow stages, router iterations, scheduler waits — with
// every event well-formed and memo hits marked. This is the
// -trace-flag contract without the CLI in the loop.
func TestCampaignTraceCoverage(t *testing.T) {
	tr := trace.New(0)
	trace.Enable(tr)
	defer trace.Disable()

	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 2, 2)
	// Duplicate the points so the second half memo-hits.
	pts = append(pts, pts...)
	eng := New(Config{Workers: 2, Cache: NewCache(0)})
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	trace.Disable()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	byName := map[string]int{}
	cacheHits := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q: phase %q, want complete event X", ev.Name, ev.Ph)
		}
		if ev.Name == "" || ev.Cat == "" || ev.Tid == 0 {
			t.Fatalf("malformed event: %+v", ev)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %q: negative time ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
		}
		byName[ev.Name]++
		if ev.Args["outcome"] == string(trace.CacheHit) {
			cacheHits++
		}
	}

	// The span taxonomy the tentpole promises: campaign lifecycle, flow
	// stages, router inner loop, scheduler queueing.
	for _, want := range []string{
		"campaign.run", "campaign.point", "campaign.attempt",
		"flow.run", "flow.synth", "flow.droute",
		"route.iter",
		"sched.wait", "sched.run",
	} {
		if byName[want] == 0 {
			t.Errorf("trace has no %q spans (got %v)", want, byName)
		}
	}
	if byName["campaign.run"] != 1 {
		t.Errorf("campaign.run spans = %d, want 1", byName["campaign.run"])
	}
	if byName["campaign.point"] != len(pts) {
		t.Errorf("campaign.point spans = %d, want %d", byName["campaign.point"], len(pts))
	}
	// The duplicated half of the points must be traced as cache hits
	// (point + attempt each carry the outcome).
	if cacheHits < len(pts)/2 {
		t.Errorf("cache-hit spans = %d, want >= %d", cacheHits, len(pts)/2)
	}

	// Latency histograms accumulated alongside: one per span name, with
	// counts matching the trace.
	snaps := tr.Histograms().Snapshots()
	hist := map[string]int64{}
	for _, h := range snaps {
		hist[h.Name] = h.Count
	}
	for name, n := range byName {
		if hist[name] != int64(n) {
			t.Errorf("histogram %s count=%d, trace has %d spans", name, hist[name], n)
		}
	}
}
