package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/flow"
	"repro/internal/journal"
)

// TestEntryCodecRoundTrip: the exported codec is the journal's wire
// format — an encoded entry must decode back to the identical record,
// and structurally empty or garbage inputs must be rejected, not
// half-decoded.
func TestEntryCodecRoundTrip(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 1, 1)
	res, err := New(Config{Workers: 1}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	in := Entry{
		Key:   pts[0].cacheKey(),
		Res:   res[0],
		Steps: []flow.StepRecord{{Step: "synth"}},
		Spec:  &flow.SpecStats{Launched: 2, Committed: 1},
	}
	data, err := EncodeEntry(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Key != in.Key || out.Res == nil || len(out.Steps) != 1 || out.Spec == nil || out.Spec.Committed != 1 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if out.Res.AreaUm2 != in.Res.AreaUm2 || out.Res.WNSPs != in.Res.WNSPs {
		t.Fatalf("round trip drifted QoR: %v vs %v", out.Res, in.Res)
	}
	if _, err := DecodeEntry([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	empty, err := EncodeEntry(Entry{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEntry(empty); err == nil {
		t.Fatal("structurally empty entry decoded without error")
	}
}

// TestJournalRecordAfterClose: an append that arrives after Close must
// be dropped safely AND surfaced via Err — a caller that requires
// durability has to find out the journal is missing points.
func TestJournalRecordAfterClose(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 1, 1)
	res, err := New(Config{Workers: 1}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	jrn := openJournal(t, filepath.Join(t.TempDir(), "journal"))
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}
	jrn.record(pts[0].cacheKey(), res[0], nil, nil)
	if jerr := jrn.Err(); !errors.Is(jerr, journal.ErrClosed) {
		t.Fatalf("Err = %v, want wrapped journal.ErrClosed", jerr)
	}
}

// TestJournalDoubleClose: closing twice is safe and idempotent — the
// second call returns the first close's outcome without touching the
// log again.
func TestJournalDoubleClose(t *testing.T) {
	jrn := openJournal(t, filepath.Join(t.TempDir(), "journal"))
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jrn.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// TestJournalRecordAfterFailStaysSticky: after one append failure the
// first error must stay the surfaced one while later records still try
// (and in this torn-down journal, fail) without panicking or masking it.
func TestJournalRecordAfterFailStaysSticky(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 1, 2)
	res, err := New(Config{Workers: 1}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	jrn := openJournal(t, filepath.Join(t.TempDir(), "journal"))
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}
	jrn.record(pts[0].cacheKey(), res[0], nil, nil)
	first := jrn.Err()
	if first == nil {
		t.Fatal("first failure not surfaced")
	}
	jrn.record(pts[1].cacheKey(), res[1], nil, nil)
	if jrn.Err() != first {
		t.Fatalf("later failure replaced the sticky error: %v", jrn.Err())
	}
}

// TestJournalCloseRacesInFlightAppends: Close fired concurrently with a
// storm of record calls must neither panic nor corrupt the log: every
// append either landed durably before the close or is surfaced via Err,
// and the journal on disk decodes cleanly.
func TestJournalCloseRacesInFlightAppends(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 3, 4)
	res, err := New(Config{Workers: 4}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "journal")
	jrn := openJournal(t, dir)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range pts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			jrn.record(pts[i].cacheKey(), res[i], nil, nil)
		}(i)
	}
	wg.Add(1)
	var closeErr error
	go func() {
		defer wg.Done()
		<-start
		closeErr = jrn.Close()
	}()
	close(start)
	wg.Wait()
	if closeErr != nil {
		t.Fatalf("racing Close = %v", closeErr)
	}
	if err := jrn.Close(); err != nil {
		t.Fatalf("post-race Close = %v", err)
	}

	// Reopen: every record that made it in must decode; appends that
	// lost the race to Close must have been surfaced, not silently gone.
	keys, corrupt := journalKeys(t, dir)
	if corrupt != 0 {
		t.Fatalf("%d corrupt records after close race", corrupt)
	}
	if len(keys)+0 > len(pts) {
		t.Fatalf("journal holds %d records for %d points", len(keys), len(pts))
	}
	if len(keys) < len(pts) && jrn.Err() == nil {
		t.Fatalf("journal holds %d of %d points but Err is nil", len(keys), len(pts))
	}
}
