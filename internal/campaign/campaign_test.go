package campaign

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cellib"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/netlist"
)

func tinyDesign(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func sweepPoints(design *netlist.Netlist, key string, nFreq, nSeeds int) []Point {
	var pts []Point
	for f := 0; f < nFreq; f++ {
		base := flow.Options{TargetFreqGHz: 0.3 + 0.1*float64(f)}
		var seeds []int64
		for s := 0; s < nSeeds; s++ {
			seeds = append(seeds, int64(1000*f+s))
		}
		pts = append(pts, Points(design, key, base, seeds)...)
	}
	return pts
}

// TestParallelMatchesSerialReference is the engine's core contract:
// whatever the scheduling order, whatever the worker count, with or
// without the memo cache, the results are bit-identical to the plain
// serial loop. Run under -race this also proves the fan-out is clean.
func TestParallelMatchesSerialReference(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 3, 4)

	// The serial reference: the loop every experiment harness used to
	// run inline.
	want := make([]*flow.Result, len(pts))
	for i, p := range pts {
		want[i] = flow.Run(p.Design, p.Options)
	}

	cases := []struct {
		name string
		cfg  Config
	}{
		{"serial_engine", Config{Workers: 1}},
		{"parallel", Config{Workers: 4}},
		{"parallel_cached", Config{Workers: 4, Cache: NewCache(0)}},
		{"parallel_tiny_cache", Config{Workers: 3, Cache: NewCache(2)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := New(tc.cfg).Run(context.Background(), pts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("point %d (%s) diverged from serial reference",
						i, pts[i].Options.Key())
				}
			}
		})
	}
}

// TestMemoizationSharesAcrossStudies models two studies hitting the same
// option points: the second costs nothing and returns identical results.
func TestMemoizationSharesAcrossStudies(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 2, 3)
	cache := NewCache(0)
	eng := New(Config{Workers: 2, Cache: cache})

	first, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != int64(len(pts)) {
		t.Errorf("misses %d, want %d", st.Misses, len(pts))
	}
	if st.Hits < int64(len(pts)) {
		t.Errorf("hits %d, want >= %d (second study should be all hits)", st.Hits, len(pts))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("point %d: second study did not reuse the cached result", i)
		}
	}
}

// TestDistinctDesignsNeverCollide guards the design half of the cache
// key: same options, different design contents, different results.
func TestDistinctDesignsNeverCollide(t *testing.T) {
	d1, d2 := tinyDesign(1), tinyDesign(2)
	cache := NewCache(0)
	eng := New(Config{Workers: 2, Cache: cache})
	opts := flow.Options{TargetFreqGHz: 0.4, Seed: 5}
	pts := []Point{
		{Design: d1, DesignKey: KeyFor(d1), Options: opts},
		{Design: d2, DesignKey: KeyFor(d2), Options: opts},
	}
	res, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] == res[1] {
		t.Fatal("different designs shared one cache entry")
	}
	if cache.Stats().Misses != 2 {
		t.Errorf("misses %d, want 2", cache.Stats().Misses)
	}
}

func TestEmptyDesignKeyBypassesCache(t *testing.T) {
	design := tinyDesign(1)
	cache := NewCache(0)
	eng := New(Config{Workers: 1, Cache: cache})
	pts := Points(design, "", flow.Options{TargetFreqGHz: 0.4}, []int64{1, 1})
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("cache touched despite empty design key: %+v", st)
	}
}

// TestCampaignAbort is the doomed-run STOP path: cancelling the context
// abandons unstarted points and reports the cancellation.
func TestCampaignAbort(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, "", 4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(Config{Workers: 2}).Run(ctx, pts)
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	nils := 0
	for _, r := range res {
		if r == nil {
			nils++
		}
	}
	if nils == 0 {
		t.Error("cancelled campaign completed every point")
	}
}

func TestObserverSeesUncachedRuns(t *testing.T) {
	design := tinyDesign(1)
	var steps int
	obs := flow.ObserverFunc(func(rec flow.StepRecord) { steps++ })
	eng := New(Config{Workers: 1, Observer: obs})
	pts := Points(design, "", flow.Options{TargetFreqGHz: 0.4}, []int64{1, 2})
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if steps != 2*6 {
		t.Errorf("observer saw %d step records, want 12 (6 per run)", steps)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("positive passthrough broken")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("auto worker count must be >= 1")
	}
}

// TestFaultRetryReproducesFaultFreeResults is the fault-tolerance
// contract: with injected crashes/license drops and enough retries, the
// campaign lands on results bit-identical to the fault-free run — at
// any worker count, with or without the memo cache.
func TestFaultRetryReproducesFaultFreeResults(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, KeyFor(design), 2, 3)

	want, err := New(Config{Workers: 2}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}

	inj := &flow.FaultInjector{Seed: 7, CrashRate: 0.12, LicenseDropRate: 0.08}
	for _, workers := range []int{1, 4, 8} {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d cached=%t", workers, cached)
			cfg := Config{Workers: workers, Faults: inj, Retry: Retry{Max: 25}}
			if cached {
				cfg.Cache = NewCache(0)
			}
			got, err := New(cfg).Run(context.Background(), pts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range want {
				if got[i] == nil {
					t.Fatalf("%s: point %d missing", name, i)
				}
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("%s: point %d diverged from fault-free reference", name, i)
				}
			}
		}
	}
}

// TestRetryExhaustionFailsPointWithoutCaching: a point whose every
// attempt faults must come back nil with a RunError — and must never be
// served from the cache as a failed result.
func TestRetryExhaustionFailsPointWithoutCaching(t *testing.T) {
	design := tinyDesign(1)
	cache := NewCache(0)
	inj := &flow.FaultInjector{Seed: 1, CrashRate: 1} // every boundary crashes
	eng := New(Config{Workers: 2, Cache: cache, Faults: inj, Retry: Retry{Max: 3}})
	pts := Points(design, KeyFor(design), flow.Options{TargetFreqGHz: 0.4}, []int64{1, 2})

	res, err := eng.Run(context.Background(), pts)
	var re *RunError
	if !errors.As(err, &re) || len(re.Failed) != 2 {
		t.Fatalf("err = %v, want RunError with 2 failures", err)
	}
	for i, r := range res {
		if r != nil {
			t.Fatalf("failed point %d recorded a result", i)
		}
	}
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d entries for failed-only runs", cache.Len())
	}
	// The same engine without faults must now compute cleanly — nothing
	// poisoned the cache.
	okEng := New(Config{Workers: 2, Cache: cache})
	ok, err := okEng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ok {
		if r == nil {
			t.Fatalf("point %d still failing after faults removed", i)
		}
	}
}

// TestCachedPointsReplayStepRecords is the fix for the documented
// footgun: with Cache and Observer both set, memoized points must
// replay the step records captured when their result was computed, so
// every point delivers one record set.
func TestCachedPointsReplayStepRecords(t *testing.T) {
	design := tinyDesign(1)
	var mu sync.Mutex
	perSeed := map[int64]int{}
	obs := flow.ObserverFunc(func(rec flow.StepRecord) {
		mu.Lock()
		if rec.Step == "droute" {
			perSeed[rec.RunSeed]++
		}
		mu.Unlock()
	})
	eng := New(Config{Workers: 2, Cache: NewCache(0), Observer: obs})
	pts := Points(design, KeyFor(design), flow.Options{TargetFreqGHz: 0.4}, []int64{1, 2})

	replaysBefore := metrics.Get("campaign.cache.replayed")
	// Three campaigns over the same points: 1 computed + 2 memoized.
	for round := 0; round < 3; round++ {
		if _, err := eng.Run(context.Background(), pts); err != nil {
			t.Fatal(err)
		}
	}
	for seed, n := range perSeed {
		if n != 3 {
			t.Errorf("seed %d delivered %d droute records, want 3 (1 computed + 2 replayed)", seed, n)
		}
	}
	if got := metrics.Get("campaign.cache.replayed") - replaysBefore; got != 4 {
		t.Errorf("observer_replays counter moved by %d, want 4 (2 points x 2 memoized rounds)", got)
	}
}

// TestAbandonedPointsNeverRecorded: a cancelled campaign's abandoned
// slots stay nil even though the result type's zero value would be a
// plausible *flow.Result had MapCtx fabricated zero slots.
func TestAbandonedPointsNeverRecorded(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, "", 3, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(Config{Workers: 2}).Run(ctx, pts)
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	for i, r := range res {
		if r != nil {
			t.Fatalf("abandoned point %d recorded result %+v", i, r)
		}
	}
}

// TestFaultErrorMatchableThroughRunError: the aggregate error a failed
// campaign returns must unwrap to the per-point tool faults, so callers
// at any layer (flow, campaign, cmd) can errors.As for *flow.FaultError
// instead of string-matching.
func TestFaultErrorMatchableThroughRunError(t *testing.T) {
	design := tinyDesign(1)
	pts := Points(design, KeyFor(design), flow.Options{TargetFreqGHz: 0.4}, []int64{1})
	inj := &flow.FaultInjector{Seed: 1, CrashRate: 1} // every boundary crashes
	_, err := New(Config{Workers: 1, Faults: inj}).Run(context.Background(), pts)
	var fe *flow.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v; *flow.FaultError not matchable through RunError", err)
	}
	if fe.Kind != flow.FaultCrash || fe.Stage == "" {
		t.Fatalf("fault = %+v, want a staged crash", fe)
	}
}
