// Package campaign is the parallel experiment engine of the
// reproduction: it fans sets of flow option points — seed sweeps,
// frequency sweeps, bandit pulls, logfile-corpus generation — out over a
// license-constrained worker pool, with results that are bit-identical
// to the serial reference loops regardless of scheduling order, and
// memoizes flow results so identical points are never recomputed across
// studies.
//
// Determinism is by construction: every point carries its own seed, a
// flow run is a pure function of (design, Options), and results land in
// the output slice by point index. Parallelism therefore changes only
// wall-clock, never statistics — the property the paper's orchestration
// needs when it samples "5 concurrent runs per iteration" under compute
// and license constraints.
package campaign

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/sched"
)

// Point is one flow run in a campaign: a design, its cache identity and
// the option point to run it at.
type Point struct {
	Design *netlist.Netlist
	// DesignKey identifies the design contents for memoization; use
	// KeyFor to derive it. An empty key disables the cache for the
	// point (e.g. when the caller will mutate the result's netlist).
	DesignKey string
	Options   flow.Options
}

// cacheKey is the full memo key: design content x canonical options.
func (p Point) cacheKey() string { return p.DesignKey + "\x00" + p.Options.Key() }

// KeyFor derives a Point.DesignKey from the design's content
// fingerprint, so two structurally identical designs share cache
// entries and two different ones never collide on a name.
func KeyFor(design *netlist.Netlist) string {
	return fmt.Sprintf("%s#%016x", design.Name, design.Fingerprint())
}

// Points expands a base option point into one Point per seed — the
// universal shape of the repo's seed-sweep loops.
func Points(design *netlist.Netlist, key string, base flow.Options, seeds []int64) []Point {
	pts := make([]Point, len(seeds))
	for i, s := range seeds {
		opts := base
		opts.Seed = s
		pts[i] = Point{Design: design, DesignKey: key, Options: opts}
	}
	return pts
}

// Config parameterizes an Engine.
type Config struct {
	// Workers is the concurrent flow-run limit (the license count).
	// <= 0 selects one worker per CPU.
	Workers int
	// Pool overrides Workers with an externally shared license pool.
	Pool *sched.Pool
	// Cache enables flow-result memoization when non-nil.
	Cache *Cache
	// Observer receives step records from every flow run. Note that
	// with more than one worker, records from different points
	// interleave (records within one run stay ordered), and memoized
	// points emit no records — instrumented campaigns that need one
	// record set per point should run uncached.
	Observer flow.Observer
}

// Engine executes campaigns. The zero-value Engine is not usable; build
// one with New.
type Engine struct {
	pool  *sched.Pool
	cache *Cache
	obs   flow.Observer
}

// New creates an engine.
func New(cfg Config) *Engine {
	pool := cfg.Pool
	if pool == nil {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.NumCPU()
		}
		pool = sched.NewPool(w)
	}
	return &Engine{pool: pool, cache: cfg.Cache, obs: cfg.Observer}
}

// Pool returns the engine's license pool (for Stats).
func (e *Engine) Pool() *sched.Pool { return e.pool }

// Cache returns the engine's memo cache (nil if memoization is off).
func (e *Engine) Cache() *Cache { return e.cache }

// Run executes every point and returns results in point order:
// out[i] corresponds to pts[i] no matter how the scheduler interleaves
// the work. On context cancellation it returns early with ctx.Err();
// points not yet started stay nil in the output.
func (e *Engine) Run(ctx context.Context, pts []Point) ([]*flow.Result, error) {
	return sched.MapCtx(ctx, e.pool, len(pts), func(i int) *flow.Result {
		return e.runPoint(pts[i])
	})
}

func (e *Engine) runPoint(p Point) *flow.Result {
	if e.cache == nil || p.DesignKey == "" {
		return flow.RunObserved(p.Design, p.Options, e.obs)
	}
	return e.cache.Do(p.cacheKey(), func() *flow.Result {
		return flow.RunObserved(p.Design, p.Options, e.obs)
	})
}

// Map is the generic deterministic fan-out for campaign work that is
// not a whole flow run (synthesis-only noise sweeps, detailed-route
// corpus generation): f(i) must depend only on i, results land by
// index. Cancellation semantics match Engine.Run.
func Map[T any](ctx context.Context, e *Engine, n int, f func(i int) T) ([]T, error) {
	return sched.MapCtx(ctx, e.pool, n, f)
}

// Workers normalizes a worker-count knob shared by the experiment
// configs: n if positive, one per CPU when 0 or negative.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}
