// Package campaign is the parallel experiment engine of the
// reproduction: it fans sets of flow option points — seed sweeps,
// frequency sweeps, bandit pulls, logfile-corpus generation — out over a
// license-constrained worker pool, with results that are bit-identical
// to the serial reference loops regardless of scheduling order, and
// memoizes flow results so identical points are never recomputed across
// studies.
//
// Determinism is by construction: every point carries its own seed, a
// flow run is a pure function of (design, Options), and results land in
// the output slice by point index. Parallelism therefore changes only
// wall-clock, never statistics — the property the paper's orchestration
// needs when it samples "5 concurrent runs per iteration" under compute
// and license constraints.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Point is one flow run in a campaign: a design, its cache identity and
// the option point to run it at.
type Point struct {
	Design *netlist.Netlist
	// DesignKey identifies the design contents for memoization; use
	// KeyFor to derive it. An empty key disables the cache for the
	// point (e.g. when the caller will mutate the result's netlist).
	DesignKey string
	Options   flow.Options
}

// cacheKey is the full memo key: design content x canonical options.
func (p Point) cacheKey() string { return p.DesignKey + "\x00" + p.Options.Key() }

// CacheKey exposes the memo key for external tiers and coordinators:
// the distributed campaign service shards points and addresses the
// shared result store by exactly the key the in-process cache uses, so
// a result computed anywhere is a hit everywhere. Empty when the point
// has no DesignKey (uncacheable points cannot be distributed).
func (p Point) CacheKey() string {
	if p.DesignKey == "" {
		return ""
	}
	return p.cacheKey()
}

// KeyFor derives a Point.DesignKey from the design's content
// fingerprint, so two structurally identical designs share cache
// entries and two different ones never collide on a name.
func KeyFor(design *netlist.Netlist) string {
	return fmt.Sprintf("%s#%016x", design.Name, design.Fingerprint())
}

// Points expands a base option point into one Point per seed — the
// universal shape of the repo's seed-sweep loops.
func Points(design *netlist.Netlist, key string, base flow.Options, seeds []int64) []Point {
	pts := make([]Point, len(seeds))
	for i, s := range seeds {
		opts := base
		opts.Seed = s
		pts[i] = Point{Design: design, DesignKey: key, Options: opts}
	}
	return pts
}

// Retry configures fault tolerance: how many times a failed point is
// re-run before the campaign gives it up.
type Retry struct {
	// Max is the number of re-runs after the first attempt (0 = fail
	// fast on the first fault).
	Max int
	// Backoff is the pause before re-running a failed point, scaled
	// linearly by the attempt number (license servers recover; hammering
	// them does not help). Zero means retry immediately.
	Backoff time.Duration
}

// Config parameterizes an Engine.
type Config struct {
	// Workers is the concurrent flow-run limit (the license count).
	// <= 0 selects one worker per CPU.
	Workers int
	// Pool overrides Workers with an externally shared license pool.
	Pool *sched.Pool
	// Cache enables flow-result memoization when non-nil.
	Cache *Cache
	// Observer receives step records from every flow run. With more
	// than one worker, records from different points interleave
	// (records within one run stay ordered). Memoized points replay the
	// step records captured when their result was first computed, so
	// cached campaigns still deliver one record set per point.
	Observer flow.Observer
	// Retry re-runs points that fail with a tool fault. Failed attempts
	// are never cached, so a retry always recomputes.
	Retry Retry
	// Faults injects deterministic tool crashes / license drops at flow
	// stage boundaries (nil = no injection). With Retry.Max large
	// enough for every point to eventually succeed, campaign results
	// are bit-identical to the fault-free run at any worker count.
	Faults *flow.FaultInjector
	// Journal, when non-nil, makes the campaign crash-safe: every
	// successfully computed point is appended to the durable log, and
	// Engine.Resume replays the log into the cache before dispatch.
	// Requires the cache (New creates an unbounded one if Cache is nil);
	// only computed results are journaled — faulted or cancelled
	// attempts never touch the log.
	Journal *Journal
	// StageTimeout arms the per-stage hung-tool watchdog on every flow
	// run (see flow.RunConfig.StageTimeout). A reaped stage surfaces as
	// a FaultHang fault and follows the normal retry path.
	StageTimeout time.Duration
	// Oracle enables speculative stage overlap for points whose
	// Options.Speculate asks for it: one oracle is shared by every run
	// in the campaign, observing completed stages and serving
	// predictions (see flow.SpecOracle, internal/spec). nil leaves
	// speculation off regardless of point options.
	Oracle flow.SpecOracle
	// SpecWorkers caps concurrent speculative chains across the whole
	// campaign (0 = one per CPU). Speculative work only ever takes a
	// free slot, never queues, so it cannot delay real stages.
	SpecWorkers int
}

// Engine executes campaigns. The zero-value Engine is not usable; build
// one with New.
type Engine struct {
	pool         *sched.Pool
	cache        *Cache
	obs          flow.Observer
	retry        Retry
	faults       *flow.FaultInjector
	journal      *Journal
	stageTimeout time.Duration
	oracle       flow.SpecOracle
	specSlots    *sched.Slots
}

// New creates an engine. A journaled engine needs the memo cache (the
// journal replays through it), so one is created if the config has none.
func New(cfg Config) *Engine {
	pool := cfg.Pool
	if pool == nil {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.NumCPU()
		}
		pool = sched.NewPool(w)
	}
	cache := cfg.Cache
	if cache == nil && cfg.Journal != nil {
		cache = NewCache(0)
	}
	var slots *sched.Slots
	if cfg.Oracle != nil {
		slots = sched.NewSlots(Workers(cfg.SpecWorkers))
	}
	return &Engine{
		pool: pool, cache: cache, obs: cfg.Observer, retry: cfg.Retry,
		faults: cfg.Faults, journal: cfg.Journal, stageTimeout: cfg.StageTimeout,
		oracle: cfg.Oracle, specSlots: slots,
	}
}

// Pool returns the engine's license pool (for Stats).
func (e *Engine) Pool() *sched.Pool { return e.pool }

// Cache returns the engine's memo cache (nil if memoization is off).
func (e *Engine) Cache() *Cache { return e.cache }

// PointError is one point's permanent failure (all retries exhausted).
type PointError struct {
	Index int
	Err   error
}

// RunError aggregates the permanently failed points of a campaign whose
// other points completed.
type RunError struct {
	Failed []PointError
}

// Unwrap exposes the per-point failures to errors.Is/errors.As, so a
// caller can match e.g. a *flow.FaultError through the aggregate.
func (e *RunError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		errs[i] = f.Err
	}
	return errs
}

func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d point(s) failed permanently:", len(e.Failed))
	for i, f := range e.Failed {
		if i == 4 {
			fmt.Fprintf(&b, " ... (%d more)", len(e.Failed)-i)
			break
		}
		fmt.Fprintf(&b, " [%d] %v;", f.Index, f.Err)
	}
	return b.String()
}

// pointOutcome is runPoint's result: exactly one of res/err is set.
type pointOutcome struct {
	res *flow.Result
	err error
}

// Run executes every point and returns results in point order:
// out[i] corresponds to pts[i] no matter how the scheduler interleaves
// the work. On context cancellation it returns early with ctx.Err();
// abandoned points stay nil in the output and are never recorded as
// computed flow results. Points that fail with a tool fault are retried
// per Config.Retry; a point that fails permanently stays nil and Run
// returns a *RunError listing it.
func (e *Engine) Run(ctx context.Context, pts []Point) ([]*flow.Result, error) {
	ctx, runSpan := trace.Start(ctx, "campaign.run")
	runSpan.SetInt("points", int64(len(pts)))
	runSpan.SetInt("workers", int64(e.pool.Licenses()))
	outs, ran, err := sched.MapCtx(ctx, e.pool, len(pts), func(i int) pointOutcome {
		return e.runPoint(ctx, pts[i], i)
	})
	results := make([]*flow.Result, len(pts))
	var failed []PointError
	abandoned := 0
	for i := range outs {
		switch {
		case !ran[i]:
			abandoned++
		case outs[i].err != nil:
			if ctx.Err() == nil {
				failed = append(failed, PointError{Index: i, Err: outs[i].err})
			}
		default:
			results[i] = outs[i].res
		}
	}
	if abandoned > 0 {
		metrics.Add("campaign.point.abandoned", int64(abandoned))
	}
	e.mirrorPoolStats()
	switch {
	case err != nil:
		runSpan.EndErr(err)
		return results, err
	case len(failed) > 0:
		runSpan.SetInt("failed", int64(len(failed)))
		runSpan.EndWith(trace.Failed)
		return results, &RunError{Failed: failed}
	}
	runSpan.End()
	return results, nil
}

// mirrorPoolStats publishes the license pool's counters into the
// process-wide registry under sched.* gauge names. The pool itself
// cannot (metrics depends on flow, flow on sched), so the campaign
// layer — the pool's main customer — mirrors after every run.
func (e *Engine) mirrorPoolStats() {
	peak, total, maxWait := e.pool.Stats()
	metrics.Set("sched.active.peak", int64(peak))
	metrics.Set("sched.task.total", int64(total))
	metrics.Set("sched.queue.depth", int64(maxWait))
}

// runPoint executes one point with the engine's retry policy. Attempt
// numbers feed the fault injector, so a retried point draws fresh fault
// coins while staying deterministic at any worker count. The span per
// point (campaign.point) carries the point's index, seed and final
// outcome; each re-run gets a campaign.attempt child, so retry storms
// are visible as repeated attempt spans under one point.
func (e *Engine) runPoint(ctx context.Context, p Point, index int) pointOutcome {
	ctx, psp := trace.Start(ctx, "campaign.point")
	psp.SetInt("index", int64(index))
	psp.SetInt("seed", p.Options.Seed)
	var lastErr error
	for attempt := 0; attempt <= e.retry.Max; attempt++ {
		if attempt > 0 {
			metrics.Add("campaign.point.retried", 1)
			if e.retry.Backoff > 0 {
				select {
				case <-time.After(time.Duration(attempt) * e.retry.Backoff):
				case <-ctx.Done():
					psp.EndWith(trace.Aborted)
					return pointOutcome{err: ctx.Err()}
				}
			}
		}
		actx, asp := trace.Start(ctx, "campaign.attempt")
		asp.SetInt("attempt", int64(attempt))
		res, hit, err := e.runOnce(actx, p, attempt)
		if err == nil {
			if hit {
				asp.EndWith(trace.CacheHit)
				psp.SetInt("attempts", int64(attempt+1))
				psp.EndWith(trace.CacheHit)
			} else {
				asp.End()
				psp.SetInt("attempts", int64(attempt+1))
				psp.End()
			}
			return pointOutcome{res: res}
		}
		if ctx.Err() != nil {
			// Cancellation is a campaign decision, not a tool fault —
			// never retried, never recorded.
			asp.EndWith(trace.Aborted)
			psp.EndWith(trace.Aborted)
			return pointOutcome{err: ctx.Err()}
		}
		asp.EndWith(trace.Retry)
		countFault(err)
		lastErr = err
	}
	metrics.Add("campaign.point.failed", 1)
	psp.EndWith(trace.Failed)
	return pointOutcome{err: lastErr}
}

// runOnce is a single attempt at a point: cache-aware, observer-aware,
// journal-aware. The returned hit flag reports whether the result was
// served from the memo cache (including coalesced waits on an in-flight
// compute) rather than computed by this attempt.
func (e *Engine) runOnce(ctx context.Context, p Point, attempt int) (*flow.Result, bool, error) {
	if e.cache == nil || p.DesignKey == "" {
		// Uncached points are also unjournaled: without a design key
		// there is no identity to resume them under.
		var spec *flow.SpecStats
		rcfg := flow.RunConfig{
			Observer: e.obs, Faults: e.faults, Attempt: attempt, StageTimeout: e.stageTimeout,
		}
		e.armSpeculation(&rcfg, &spec)
		res, err := flow.RunCfg(ctx, p.Design, p.Options, rcfg)
		if err != nil {
			return nil, false, err
		}
		e.countStopped(res)
		countSpec(spec)
		return res, false, nil
	}
	key := p.cacheKey()
	res, steps, hit, err := e.cache.DoRecorded(key, func() (*flow.Result, []flow.StepRecord, error) {
		rec := &recordingObserver{next: e.obs}
		var spec *flow.SpecStats
		rcfg := flow.RunConfig{
			Observer: rec, Faults: e.faults, Attempt: attempt, StageTimeout: e.stageTimeout,
		}
		e.armSpeculation(&rcfg, &spec)
		res, err := flow.RunCfg(ctx, p.Design, p.Options, rcfg)
		if err != nil {
			return nil, nil, err
		}
		e.countStopped(res)
		countSpec(spec)
		if e.journal != nil {
			// Journal inside the compute path: only ever-successful,
			// never-faulted results reach here, exactly once per key (a
			// cache hit never recomputes, so it can never re-append).
			e.journal.record(key, res, rec.steps, spec)
		}
		return res, rec.steps, nil
	})
	if err != nil {
		return nil, false, err
	}
	if hit && e.obs != nil {
		// Memoized point: replay the records its compute emitted so the
		// Observer sees one record set per point, cached or not.
		for _, rec := range steps {
			e.obs.OnStep(rec)
		}
		if len(steps) > 0 {
			metrics.Add("campaign.cache.replayed", 1)
		}
	}
	return res, hit, nil
}

// countStopped mirrors live doomed-run stops into the campaign counters
// (flow cannot: the metrics package depends on it).
func (e *Engine) countStopped(res *flow.Result) {
	if res == nil || !res.Stopped || res.Route == nil {
		return
	}
	metrics.Add("campaign.doomed.stopped", 1)
	if saved := res.Route.IterationsBudget - res.Route.IterationsRun; saved > 0 {
		metrics.Add("campaign.doomed.saved_iters", int64(saved))
	}
}

// armSpeculation attaches the campaign's shared oracle and speculative
// worker slots to one flow run and routes its SpecStats report into
// *out. No-op when the engine has no oracle — the run stays purely
// sequential. The report only fires for successful runs, which is the
// same population the journal records, so counters replayed at resume
// match counters counted live.
func (e *Engine) armSpeculation(rcfg *flow.RunConfig, out **flow.SpecStats) {
	if e.oracle == nil {
		return
	}
	rcfg.Oracle = e.oracle
	rcfg.SpecSlots = e.specSlots
	rcfg.SpecReport = func(st flow.SpecStats) { *out = &st }
}

// countSpec mirrors one run's speculation outcome into the process-wide
// counters and predictor-accuracy histograms (flow cannot: metrics
// depends on it). nil means the run did not speculate.
func countSpec(st *flow.SpecStats) {
	if st == nil {
		return
	}
	if st.Launched > 0 {
		metrics.Add("spec.chain.launched", int64(st.Launched))
	}
	if st.Skipped > 0 {
		metrics.Add("spec.chain.skipped", int64(st.Skipped))
	}
	if st.Committed > 0 {
		metrics.Add("spec.stage.committed", int64(st.Committed))
	}
	if st.Discarded > 0 {
		metrics.Add("spec.chain.discarded", int64(st.Discarded))
	}
	countJudgment("synth", st.Synth)
	countJudgment("place", st.Place)
}

// countJudgment counts one stage prediction as hit or miss and feeds its
// tolerance error into the per-stage accuracy histogram
// (predict.tolerr.<stage>, rendered by /debug/hist).
func countJudgment(stage string, j flow.SpecJudgment) {
	if !j.Predicted {
		return
	}
	if j.Hit {
		metrics.Add("predict."+stage+".hit", 1)
	} else {
		metrics.Add("predict."+stage+".miss", 1)
	}
	metrics.Observe("predict.tolerr."+stage, j.ErrPct)
}

// countFault classifies a retryable failure into the fault counters.
func countFault(err error) {
	var fe *flow.FaultError
	if errors.As(err, &fe) {
		metrics.Add("campaign.fault."+fe.Kind, 1)
		if fe.Kind == flow.FaultHang {
			metrics.Add("campaign.watchdog.fired", 1)
		}
		return
	}
	metrics.Add("campaign.fault.other", 1)
}

// recordingObserver captures the step records of one flow run (for the
// memo cache) while forwarding them live to the campaign observer.
type recordingObserver struct {
	next  flow.Observer
	steps []flow.StepRecord
}

// OnStep implements flow.Observer. flow.RunCtx supervises routing when
// its observer implements flow.RouteSupervisor; the recorder forwards
// that too so caching does not disable live doomed-run abort.
func (r *recordingObserver) OnStep(rec flow.StepRecord) {
	r.steps = append(r.steps, rec)
	if r.next != nil {
		r.next.OnStep(rec)
	}
}

// RouteIter implements flow.RouteSupervisor by delegating to the
// campaign observer when it supervises, else always Continue.
func (r *recordingObserver) RouteIter(design string, runSeed int64, iter int, drvs []int) route.IterAction {
	if sup, ok := r.next.(flow.RouteSupervisor); ok {
		return sup.RouteIter(design, runSeed, iter, drvs)
	}
	return route.Continue
}

// Map is the generic deterministic fan-out for campaign work that is
// not a whole flow run (synthesis-only noise sweeps, detailed-route
// corpus generation): f(i) must depend only on i, results land by
// index. Cancellation semantics match sched.MapCtx: out[i] is valid
// exactly when ran[i] is true.
func Map[T any](ctx context.Context, e *Engine, n int, f func(i int) T) (out []T, ran []bool, err error) {
	return sched.MapCtx(ctx, e.pool, n, f)
}

// Workers normalizes a worker-count knob shared by the experiment
// configs: n if positive, one per CPU when 0 or negative.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}
