// Package sizing implements discrete gate sizing with a signoff timer in
// the optimization loop (the paper's ref [24], "High-Performance Gate
// Sizing with a Signoff Timer"), plus an annealing optimizer that plugs
// into the go-with-the-winners framework for the Fig. 6(a) experiment.
//
// All inner loops run on sta.Incremental, the dirty-frontier timing
// engine: a candidate move costs O(touched cone) instead of a full-graph
// propagation, which is what makes a signoff-grade timer affordable
// inside the loop. Config.ForceFullSTA restores the full re-analysis per
// candidate — kept as the benchmark baseline and differential oracle.
package sizing

import (
	"math"
	"math/rand"

	"repro/internal/gwtw"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Config parameterizes the sizing passes.
type Config struct {
	Seed      int64
	MaxPasses int // sizing/timing iterations (default 8)
	// Engine is the timer consulted inside the loop; nil means the
	// signoff engine (the point of ref [24]).
	Engine *sta.Config
	// SlackMarginPs is the slack floor kept during area recovery
	// (default 5 ps).
	SlackMarginPs float64
	// ForceFullSTA disables the incremental timing engine and re-runs a
	// full sta.Analyze after every candidate move — the pre-incremental
	// behavior. With the exact (epsilon-0) incremental engine both paths
	// take identical decisions and produce identical netlists; this knob
	// exists for benchmarking and differential testing.
	ForceFullSTA bool
}

func (c Config) withDefaults() Config {
	if c.MaxPasses <= 0 {
		c.MaxPasses = 8
	}
	if c.Engine == nil {
		c.Engine = &sta.Config{Engine: sta.Signoff}
	}
	if c.SlackMarginPs == 0 {
		c.SlackMarginPs = 5
	}
	return c
}

// Result reports a sizing pass.
type Result struct {
	AreaBefore, AreaAfter float64
	WNSBefore, WNSAfter   float64
	Upsized, Downsized    int
	// TimerRuns counts timing queries: one per candidate move plus the
	// initial analysis (the work metric of ref [24]'s cost argument).
	TimerRuns int
	// TimerWorkEquiv is the propagation work actually performed, in
	// full-Analyze equivalents. With ForceFullSTA it equals TimerRuns;
	// with the incremental engine it is far smaller — the headline
	// saving of in-loop incremental timing.
	TimerWorkEquiv float64
	Met            bool
}

// Fix upsizes cells on violating paths until timing is met or sizes
// saturate, consulting the configured timer every pass (signoff-driven
// sizing). The netlist is modified in place.
func Fix(n *netlist.Netlist, cfg Config) Result {
	cfg = cfg.withDefaults()
	if cfg.ForceFullSTA {
		return fixFull(n, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{AreaBefore: n.Area()}
	inc := sta.NewIncremental(n, *cfg.Engine)
	res.TimerRuns++
	res.WNSBefore = inc.WNSPs()
	for pass := 0; pass < cfg.MaxPasses && inc.WNSPs() < 0; pass++ {
		changed := 0
		// Attack every violating endpoint's critical cone.
		for _, ep := range inc.ViolatingEndpoints() {
			netID := ep.Net
			for depth := 0; depth < 8 && netID >= 0; depth++ {
				drv := n.Nets[netID].Driver
				if drv < 0 {
					break
				}
				cell := n.Insts[drv].Cell
				if up, ok := n.Lib.Upsize(cell); ok && rng.Float64() < 0.6 {
					n.Insts[drv].Cell = up
					inc.Resize(drv)
					changed++
					res.Upsized++
				}
				if cell.Class.Sequential() {
					break
				}
				// Walk to the worst fanin (approximate: first).
				fanins := n.FaninNet[drv]
				netID = -1
				for _, f := range fanins {
					if f >= 0 && !n.Nets[f].IsClock {
						netID = f
						break
					}
				}
			}
		}
		if changed == 0 {
			break
		}
		res.TimerRuns++
	}
	res.AreaAfter = n.Area()
	res.WNSAfter = inc.WNSPs()
	res.Met = res.WNSAfter >= 0
	res.TimerWorkEquiv = inc.FullEquivalents()
	return res
}

// fixFull is Fix with a full re-analysis per pass (ForceFullSTA).
func fixFull(n *netlist.Netlist, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{AreaBefore: n.Area()}
	rep := sta.Analyze(n, *cfg.Engine)
	res.TimerRuns++
	res.WNSBefore = rep.WNSPs
	for pass := 0; pass < cfg.MaxPasses && rep.WNSPs < 0; pass++ {
		changed := 0
		for _, ep := range rep.WorstEndpoints(len(rep.Endpoints)) {
			if ep.SlackPs >= 0 {
				break
			}
			netID := ep.Net
			for depth := 0; depth < 8 && netID >= 0; depth++ {
				drv := n.Nets[netID].Driver
				if drv < 0 {
					break
				}
				cell := n.Insts[drv].Cell
				if up, ok := n.Lib.Upsize(cell); ok && rng.Float64() < 0.6 {
					n.Insts[drv].Cell = up
					changed++
					res.Upsized++
				}
				if cell.Class.Sequential() {
					break
				}
				fanins := n.FaninNet[drv]
				netID = -1
				for _, f := range fanins {
					if f >= 0 && !n.Nets[f].IsClock {
						netID = f
						break
					}
				}
			}
		}
		if changed == 0 {
			break
		}
		rep = sta.Analyze(n, *cfg.Engine)
		res.TimerRuns++
	}
	res.AreaAfter = n.Area()
	res.WNSAfter = rep.WNSPs
	res.Met = rep.WNSPs >= 0
	res.TimerWorkEquiv = float64(res.TimerRuns)
	return res
}

// Recover downsizes cells while the signoff timer confirms slack stays
// above the configured margin — the area/power recovery step that
// miscorrelated timers make wasteful (Sec. 3.2: an overly pessimistic
// P&R timer "will perform unneeded sizing ... that cost area, power and
// schedule"). Each candidate downsize is speculative: applied under a
// Checkpoint, kept if the margin holds, rolled back in O(touched cone)
// otherwise. The netlist is modified in place.
func Recover(n *netlist.Netlist, cfg Config) Result {
	cfg = cfg.withDefaults()
	if cfg.ForceFullSTA {
		return recoverFull(n, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{AreaBefore: n.Area()}
	inc := sta.NewIncremental(n, *cfg.Engine)
	res.TimerRuns++
	res.WNSBefore = inc.WNSPs()
	if res.WNSBefore < cfg.SlackMarginPs {
		res.AreaAfter = res.AreaBefore
		res.WNSAfter = res.WNSBefore
		res.Met = res.WNSBefore >= 0
		res.TimerWorkEquiv = inc.FullEquivalents()
		return res
	}
	order := rng.Perm(n.NumCells())
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		changed := 0
		for _, id := range order {
			down, ok := n.Lib.Downsize(n.Insts[id].Cell)
			if !ok {
				continue
			}
			old := n.Insts[id].Cell
			inc.Checkpoint()
			n.Insts[id].Cell = down
			inc.Resize(id)
			res.TimerRuns++
			if inc.WNSPs() < cfg.SlackMarginPs {
				n.Insts[id].Cell = old // revert
				inc.Rollback()
				continue
			}
			inc.Commit()
			changed++
			res.Downsized++
		}
		if changed == 0 {
			break
		}
	}
	res.AreaAfter = n.Area()
	res.WNSAfter = inc.WNSPs()
	res.Met = res.WNSAfter >= 0
	res.TimerWorkEquiv = inc.FullEquivalents()
	return res
}

// recoverFull is Recover with a full re-analysis per candidate
// (ForceFullSTA) — the pre-incremental baseline.
func recoverFull(n *netlist.Netlist, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{AreaBefore: n.Area()}
	rep := sta.Analyze(n, *cfg.Engine)
	res.TimerRuns++
	res.WNSBefore = rep.WNSPs
	if rep.WNSPs < cfg.SlackMarginPs {
		res.AreaAfter = res.AreaBefore
		res.WNSAfter = rep.WNSPs
		res.Met = rep.WNSPs >= 0
		res.TimerWorkEquiv = float64(res.TimerRuns)
		return res
	}
	order := rng.Perm(n.NumCells())
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		changed := 0
		for _, id := range order {
			down, ok := n.Lib.Downsize(n.Insts[id].Cell)
			if !ok {
				continue
			}
			old := n.Insts[id].Cell
			n.Insts[id].Cell = down
			check := sta.Analyze(n, *cfg.Engine)
			res.TimerRuns++
			if check.WNSPs < cfg.SlackMarginPs {
				n.Insts[id].Cell = old // revert
				continue
			}
			rep = check
			changed++
			res.Downsized++
		}
		if changed == 0 {
			break
		}
	}
	res.AreaAfter = n.Area()
	res.WNSAfter = rep.WNSPs
	res.Met = rep.WNSPs >= 0
	res.TimerWorkEquiv = float64(res.TimerRuns)
	return res
}

// Annealer is a gwtw.Optimizer over discrete cell sizes: cost is total
// area plus a heavy penalty for negative signoff slack. Timing is
// evaluated by an incremental engine; annealing rejects roll the timing
// state back instead of re-evaluating the graph.
type Annealer struct {
	N       *netlist.Netlist
	Engine  sta.Config
	Penalty float64 // cost per ps of negative WNS (default 50)
	Temp    float64 // acceptance temperature, cools per step

	inc   *sta.Incremental
	cost  float64
	valid bool
}

// NewAnnealer wraps a netlist (cloned; the original is untouched).
func NewAnnealer(n *netlist.Netlist, engine sta.Config, seed int64) *Annealer {
	a := &Annealer{
		N:       n.Clone(),
		Engine:  engine,
		Penalty: 50,
		Temp:    2.0,
	}
	// Scramble the starting sizes so different threads explore
	// different basins.
	rng := rand.New(rand.NewSource(seed))
	for i := range a.N.Insts {
		steps := rng.Intn(3)
		for k := 0; k < steps; k++ {
			if up, ok := a.N.Lib.Upsize(a.N.Insts[i].Cell); ok {
				a.N.Insts[i].Cell = up
			}
		}
	}
	return a
}

// timer returns the incremental engine, building it on first use (after
// the start scramble).
func (a *Annealer) timer() *sta.Incremental {
	if a.inc == nil {
		a.inc = sta.NewIncremental(a.N, a.Engine)
	}
	return a.inc
}

// Cost implements gwtw.Optimizer.
func (a *Annealer) Cost() float64 {
	if !a.valid {
		a.cost = a.evaluate()
		a.valid = true
	}
	return a.cost
}

func (a *Annealer) evaluate() float64 {
	wns := a.timer().WNSPs()
	c := a.N.Area()
	if wns < 0 {
		c += a.Penalty * -wns
	}
	return c
}

// Step implements gwtw.Optimizer: resize one random cell, keep the move
// if it helps (or with annealing tolerance); a rejected move rolls the
// timing state back in O(touched cone).
func (a *Annealer) Step(rng *rand.Rand) {
	id := rng.Intn(a.N.NumCells())
	old := a.N.Insts[id].Cell
	var next = old
	var ok bool
	if rng.Float64() < 0.5 {
		next, ok = a.N.Lib.Upsize(old)
	} else {
		next, ok = a.N.Lib.Downsize(old)
	}
	if !ok {
		return
	}
	before := a.Cost()
	inc := a.timer()
	inc.Checkpoint()
	a.N.Insts[id].Cell = next
	inc.Resize(id)
	after := a.evaluate()
	if after <= before || rng.Float64() < math.Exp((before-after)/math.Max(a.Temp, 1e-9)) {
		inc.Commit()
		a.cost = after
	} else {
		a.N.Insts[id].Cell = old
		inc.Rollback()
	}
	a.Temp *= 0.999
}

// Clone implements gwtw.Optimizer.
func (a *Annealer) Clone() gwtw.Optimizer {
	c := &Annealer{
		N:       a.N.Clone(),
		Engine:  a.Engine,
		Penalty: a.Penalty,
		Temp:    a.Temp,
		cost:    a.cost,
		valid:   a.valid,
	}
	if a.inc != nil {
		c.inc = a.inc.Clone(c.N)
	}
	return c
}
