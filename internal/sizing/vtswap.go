package sizing

import (
	"math/rand"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// VTResult reports a VT-swapping leakage-recovery pass.
type VTResult struct {
	LeakageBefore float64
	LeakageAfter  float64
	Swapped       int
	TimerRuns     int
	// TimerWorkEquiv is the propagation work performed, in full-Analyze
	// equivalents (see Result.TimerWorkEquiv).
	TimerWorkEquiv float64
	Met            bool
}

// RecoverVT swaps non-critical cells to the high-VT flavor while the
// signoff timer confirms slack stays above the margin — the
// "VT-swapping operations" of the paper's Sec. 3.2, which an overly
// pessimistic timer would leave on the table. Candidate swaps are
// speculative moves on the incremental timer: try, check, roll back in
// O(touched cone) when the margin would be violated. The netlist is
// modified in place and must use a multi-VT library.
func RecoverVT(n *netlist.Netlist, cfg Config) VTResult {
	cfg = cfg.withDefaults()
	if cfg.ForceFullSTA {
		return recoverVTFull(n, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := VTResult{LeakageBefore: n.Leakage()}
	inc := sta.NewIncremental(n, *cfg.Engine)
	res.TimerRuns++
	if inc.WNSPs() < cfg.SlackMarginPs {
		res.LeakageAfter = res.LeakageBefore
		res.Met = inc.WNSPs() >= 0
		res.TimerWorkEquiv = inc.FullEquivalents()
		return res
	}
	order := rng.Perm(n.NumCells())
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		changed := 0
		for _, id := range order {
			cell := n.Insts[id].Cell
			if cell.VT == cellib.HVT {
				continue
			}
			hvt, ok := n.Lib.WithVT(cell, cellib.HVT)
			if !ok {
				continue
			}
			inc.Checkpoint()
			n.Insts[id].Cell = hvt
			inc.Resize(id)
			res.TimerRuns++
			if inc.WNSPs() < cfg.SlackMarginPs {
				n.Insts[id].Cell = cell // revert
				inc.Rollback()
				continue
			}
			inc.Commit()
			changed++
			res.Swapped++
		}
		if changed == 0 {
			break
		}
	}
	res.LeakageAfter = n.Leakage()
	res.Met = inc.WNSPs() >= 0
	res.TimerWorkEquiv = inc.FullEquivalents()
	return res
}

// recoverVTFull is RecoverVT with a full re-analysis per candidate
// (ForceFullSTA) — the pre-incremental baseline.
func recoverVTFull(n *netlist.Netlist, cfg Config) VTResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := VTResult{LeakageBefore: n.Leakage()}
	rep := sta.Analyze(n, *cfg.Engine)
	res.TimerRuns++
	if rep.WNSPs < cfg.SlackMarginPs {
		res.LeakageAfter = res.LeakageBefore
		res.Met = rep.WNSPs >= 0
		res.TimerWorkEquiv = float64(res.TimerRuns)
		return res
	}
	order := rng.Perm(n.NumCells())
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		changed := 0
		for _, id := range order {
			cell := n.Insts[id].Cell
			if cell.VT == cellib.HVT {
				continue
			}
			hvt, ok := n.Lib.WithVT(cell, cellib.HVT)
			if !ok {
				continue
			}
			n.Insts[id].Cell = hvt
			check := sta.Analyze(n, *cfg.Engine)
			res.TimerRuns++
			if check.WNSPs < cfg.SlackMarginPs {
				n.Insts[id].Cell = cell // revert
				continue
			}
			rep = check
			changed++
			res.Swapped++
		}
		if changed == 0 {
			break
		}
	}
	res.LeakageAfter = n.Leakage()
	res.Met = rep.WNSPs >= 0
	res.TimerWorkEquiv = float64(res.TimerRuns)
	return res
}
