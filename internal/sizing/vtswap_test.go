package sizing

import (
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func multiVTDesign(seed int64, slackFactor float64) *netlist.Netlist {
	n := netlist.Generate(cellib.Default14nmMultiVT(), netlist.Tiny(seed))
	rep := sta.Analyze(n, sta.Config{Engine: sta.Signoff})
	n.ClockPeriodPs = (1000 / rep.MaxFreqGHz) * slackFactor
	return n
}

func TestRecoverVTSavesLeakage(t *testing.T) {
	n := multiVTDesign(1, 2.0) // generous slack
	res := RecoverVT(n, Config{Seed: 1, MaxPasses: 2})
	if res.Swapped == 0 {
		t.Fatal("no cells swapped despite slack")
	}
	if res.LeakageAfter >= res.LeakageBefore {
		t.Fatalf("leakage did not drop: %v -> %v", res.LeakageBefore, res.LeakageAfter)
	}
	if !res.Met {
		t.Fatal("VT swap broke timing")
	}
	final := sta.Analyze(n, sta.Config{Engine: sta.Signoff})
	if final.WNSPs < 0 {
		t.Fatalf("netlist violates after VT recovery: %v", final.WNSPs)
	}
	// HVT cells present.
	hvt := 0
	for i := range n.Insts {
		if n.Insts[i].Cell.VT == cellib.HVT {
			hvt++
		}
	}
	if hvt != res.Swapped {
		t.Errorf("HVT count %d != swapped %d", hvt, res.Swapped)
	}
}

func TestRecoverVTRefusesTightDesign(t *testing.T) {
	n := multiVTDesign(2, 1.0) // zero slack
	leak := n.Leakage()
	res := RecoverVT(n, Config{Seed: 1})
	if res.Swapped != 0 || n.Leakage() != leak {
		t.Error("VT recovery should not touch a zero-slack design")
	}
}

func TestRecoverVTNeedsMultiVTLibrary(t *testing.T) {
	// Single-VT library: WithVT(HVT) fails everywhere, nothing swaps.
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(3))
	rep := sta.Analyze(n, sta.Config{Engine: sta.Signoff})
	n.ClockPeriodPs = (1000 / rep.MaxFreqGHz) * 2
	res := RecoverVT(n, Config{Seed: 1})
	if res.Swapped != 0 {
		t.Error("single-VT library cannot swap")
	}
}

func TestMultiVTLibraryShape(t *testing.T) {
	lib := cellib.Default14nmMultiVT()
	if got := len(lib.Cells()); got != 11*5*3 {
		t.Fatalf("%d cells, want 165", got)
	}
	svt, _ := lib.ByName("INV_X2")
	hvt, ok := lib.ByName("INV_X2_HVT")
	if !ok {
		t.Fatal("HVT flavor missing")
	}
	lvt, ok := lib.ByName("INV_X2_LVT")
	if !ok {
		t.Fatal("LVT flavor missing")
	}
	if !(hvt.Leakage < svt.Leakage && svt.Leakage < lvt.Leakage) {
		t.Error("leakage ordering HVT < SVT < LVT broken")
	}
	const load = 20.0
	if !(lvt.Delay(load) < svt.Delay(load) && svt.Delay(load) < hvt.Delay(load)) {
		t.Error("delay ordering LVT < SVT < HVT broken")
	}
	// Upsize preserves flavor.
	up, okUp := lib.Upsize(hvt)
	if !okUp || up.VT != cellib.HVT || up.Drive <= hvt.Drive {
		t.Errorf("HVT upsize broken: %+v", up)
	}
	// WithVT round trip.
	back, okBack := lib.WithVT(hvt, cellib.SVT)
	if !okBack || back.Name != "INV_X2" {
		t.Errorf("WithVT round trip got %v", back.Name)
	}
	if cellib.HVT.String() != "HVT" || cellib.SVT.String() != "SVT" || cellib.LVT.String() != "LVT" {
		t.Error("VT names")
	}
}
