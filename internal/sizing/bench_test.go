package sizing

import (
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// benchEngine is the signoff configuration the flow runs in-loop.
var benchEngine = sta.Config{Engine: sta.Signoff, SI: true}

// benchDesign is the shared pulpino-proxy recovery workload: oversized
// cells and a relaxed clock, so Recover evaluates many candidates.
func benchDesign(b *testing.B) *netlist.Netlist {
	return looseDesign(b, cellib.Default14nm(), netlist.PulpinoProxy(7), benchEngine, 7)
}

func benchRecover(b *testing.B, force bool) {
	base := benchDesign(b)
	var res Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := base.Clone()
		b.StartTimer()
		res = Recover(n, Config{Seed: 7, MaxPasses: 2, Engine: &benchEngine, ForceFullSTA: force})
	}
	// Both variants must land on the same netlist; the metrics make the
	// equality visible in benchmark output (and BENCH_sta.json).
	b.ReportMetric(res.AreaAfter, "area_um2")
	b.ReportMetric(res.WNSAfter, "wns_ps")
}

// BenchmarkRecoverFull is the pre-incremental baseline: one full
// Analyze per candidate downsize.
func BenchmarkRecoverFull(b *testing.B) { benchRecover(b, true) }

// BenchmarkRecoverIncremental is the same recovery on sta.Incremental.
func BenchmarkRecoverIncremental(b *testing.B) { benchRecover(b, false) }
