package sizing

import (
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// looseDesign builds a preset netlist with every cell bumped up a notch
// or two and a generous clock, so area recovery has real work to do.
func looseDesign(tb testing.TB, lib *cellib.Library, spec netlist.Spec, engine sta.Config, seed int64) *netlist.Netlist {
	tb.Helper()
	n := netlist.Generate(lib, spec)
	rng := rand.New(rand.NewSource(seed))
	for i := range n.Insts {
		for k := 1 + rng.Intn(2); k > 0; k-- {
			if up, ok := n.Lib.Upsize(n.Insts[i].Cell); ok {
				n.Insts[i].Cell = up
			}
		}
	}
	rep := sta.Analyze(n, engine)
	if rep.MaxFreqGHz > 0 {
		n.ClockPeriodPs = (1000 / rep.MaxFreqGHz) * 1.3
	}
	return n
}

func sameCells(t *testing.T, a, b *netlist.Netlist) {
	t.Helper()
	for i := range a.Insts {
		if a.Insts[i].Cell.Name != b.Insts[i].Cell.Name {
			t.Fatalf("inst %d diverged: incremental=%s full=%s", i, a.Insts[i].Cell.Name, b.Insts[i].Cell.Name)
		}
	}
}

// TestRecoverFullEquivalence: with the exact (epsilon-0) engine,
// incremental Recover must take the identical sequence of keep/revert
// decisions as the ForceFullSTA baseline — same final cells, area, WNS
// and candidate count — while doing far less propagation work.
func TestRecoverFullEquivalence(t *testing.T) {
	engine := sta.Config{Engine: sta.Signoff, SI: true}
	base := looseDesign(t, cellib.Default14nm(), netlist.Artificial(51), engine, 51)
	nInc, nFull := base.Clone(), base.Clone()

	cfg := Config{Seed: 1, MaxPasses: 2, Engine: &engine}
	rInc := Recover(nInc, cfg)
	cfg.ForceFullSTA = true
	rFull := Recover(nFull, cfg)

	if rInc.AreaAfter != rFull.AreaAfter || rInc.WNSAfter != rFull.WNSAfter ||
		rInc.Downsized != rFull.Downsized || rInc.TimerRuns != rFull.TimerRuns {
		t.Fatalf("incremental and full Recover diverged:\n inc  %+v\n full %+v", rInc, rFull)
	}
	sameCells(t, nInc, nFull)
	if rInc.Downsized == 0 {
		t.Fatal("recovery performed no downsizing; test design not loose enough")
	}
	if rInc.TimerWorkEquiv >= rFull.TimerWorkEquiv {
		t.Fatalf("incremental work %v not below full work %v", rInc.TimerWorkEquiv, rFull.TimerWorkEquiv)
	}
}

// TestFixFullEquivalence: same property for the upsizing direction.
func TestFixFullEquivalence(t *testing.T) {
	engine := sta.Config{Engine: sta.Signoff}
	n := netlist.Generate(cellib.Default14nm(), netlist.Artificial(52))
	rep := sta.Analyze(n, engine)
	if rep.MaxFreqGHz > 0 {
		n.ClockPeriodPs = (1000 / rep.MaxFreqGHz) * 0.92 // force violations
	}
	nInc, nFull := n.Clone(), n.Clone()

	cfg := Config{Seed: 2, MaxPasses: 4, Engine: &engine}
	rInc := Fix(nInc, cfg)
	cfg.ForceFullSTA = true
	rFull := Fix(nFull, cfg)

	if rInc.AreaAfter != rFull.AreaAfter || rInc.WNSAfter != rFull.WNSAfter ||
		rInc.Upsized != rFull.Upsized || rInc.TimerRuns != rFull.TimerRuns {
		t.Fatalf("incremental and full Fix diverged:\n inc  %+v\n full %+v", rInc, rFull)
	}
	sameCells(t, nInc, nFull)
	if rInc.Upsized == 0 {
		t.Fatal("fix performed no upsizing; test design not tight enough")
	}
}

// TestRecoverVTFullEquivalence: VT swapping must also be decision-exact
// against the full-STA baseline.
func TestRecoverVTFullEquivalence(t *testing.T) {
	engine := sta.Config{Engine: sta.Signoff, SI: true}
	base := looseDesign(t, cellib.Default14nmMultiVT(), netlist.Artificial(53), engine, 53)
	nInc, nFull := base.Clone(), base.Clone()

	cfg := Config{Seed: 3, MaxPasses: 2, Engine: &engine}
	rInc := RecoverVT(nInc, cfg)
	cfg.ForceFullSTA = true
	rFull := RecoverVT(nFull, cfg)

	if rInc.LeakageAfter != rFull.LeakageAfter || rInc.Swapped != rFull.Swapped ||
		rInc.TimerRuns != rFull.TimerRuns || rInc.Met != rFull.Met {
		t.Fatalf("incremental and full RecoverVT diverged:\n inc  %+v\n full %+v", rInc, rFull)
	}
	sameCells(t, nInc, nFull)
	if rInc.Swapped == 0 {
		t.Fatal("no cells swapped; test design not loose enough")
	}
}

// TestRecoverIncrementalWorkMetric pins the headline saving: the
// propagation work of incremental Recover, measured in full-Analyze
// equivalents, must stay well below the timer-query count that the
// full baseline would have paid.
func TestRecoverIncrementalWorkMetric(t *testing.T) {
	engine := sta.Config{Engine: sta.Signoff, SI: true}
	n := looseDesign(t, cellib.Default14nm(), netlist.Artificial(54), engine, 54)
	res := Recover(n, Config{Seed: 4, MaxPasses: 2, Engine: &engine})
	if res.TimerRuns < 100 {
		t.Fatalf("expected a substantial candidate count, got TimerRuns=%d", res.TimerRuns)
	}
	if limit := float64(res.TimerRuns) / 3; res.TimerWorkEquiv >= limit {
		t.Fatalf("incremental work regressed: %.2f full-equivalents for %d timer runs (limit %.2f)",
			res.TimerWorkEquiv, res.TimerRuns, limit)
	}
}
