package sizing

import (
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/gwtw"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func tight(seed int64) *netlist.Netlist {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
	rep := sta.Analyze(n, sta.Config{Engine: sta.Signoff})
	// Constrain to 90% of achievable: violations to fix.
	n.ClockPeriodPs = (1000 / rep.MaxFreqGHz) * 0.9
	return n
}

func loose(seed int64) *netlist.Netlist {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
	rep := sta.Analyze(n, sta.Config{Engine: sta.Signoff})
	n.ClockPeriodPs = (1000 / rep.MaxFreqGHz) * 2
	// Upsize everything so recovery has room.
	for i := range n.Insts {
		up, _ := n.Lib.Upsize(n.Insts[i].Cell)
		n.Insts[i].Cell = up
	}
	return n
}

func TestFixImprovesWNS(t *testing.T) {
	n := tight(1)
	res := Fix(n, Config{Seed: 1})
	if res.WNSBefore >= 0 {
		t.Skip("constraint not tight enough")
	}
	if res.WNSAfter <= res.WNSBefore {
		t.Errorf("Fix did not improve WNS: %v -> %v", res.WNSBefore, res.WNSAfter)
	}
	if res.Upsized == 0 {
		t.Error("Fix upsized nothing")
	}
	if res.AreaAfter <= res.AreaBefore {
		t.Error("fixing timing should cost area")
	}
	if res.TimerRuns < 2 {
		t.Error("signoff timer should be consulted per pass")
	}
}

func TestRecoverSavesAreaKeepsTiming(t *testing.T) {
	n := loose(2)
	res := Recover(n, Config{Seed: 1, MaxPasses: 2})
	if res.AreaAfter >= res.AreaBefore {
		t.Errorf("Recover saved no area: %v -> %v", res.AreaBefore, res.AreaAfter)
	}
	if !res.Met {
		t.Errorf("Recover broke timing: WNS %v", res.WNSAfter)
	}
	if res.Downsized == 0 {
		t.Error("Recover downsized nothing")
	}
	final := sta.Analyze(n, sta.Config{Engine: sta.Signoff})
	if final.WNSPs < 0 {
		t.Errorf("netlist violates after recovery: %v", final.WNSPs)
	}
}

func TestRecoverRefusesWhenTight(t *testing.T) {
	n := tight(3)
	before := n.Area()
	res := Recover(n, Config{Seed: 1})
	if res.WNSBefore >= 5 {
		t.Skip("not tight")
	}
	if n.Area() != before || res.Downsized != 0 {
		t.Error("Recover should not touch a timing-critical design")
	}
}

func TestAnnealerOptimizerContract(t *testing.T) {
	n := loose(4)
	a := NewAnnealer(n, sta.Config{Engine: sta.Fast}, 1)
	rng := rand.New(rand.NewSource(1))
	c0 := a.Cost()
	if c0 <= 0 {
		t.Fatal("cost must be positive")
	}
	clone := a.Clone()
	for i := 0; i < 200; i++ {
		a.Step(rng)
	}
	if clone.Cost() != c0 {
		t.Error("stepping the original changed the clone's cost")
	}
	// Annealing should not leave cost far above start on average.
	if a.Cost() > c0*1.5 {
		t.Errorf("annealer diverged: %v -> %v", c0, a.Cost())
	}
}

func TestAnnealerUnderGWTW(t *testing.T) {
	n := loose(5)
	res := gwtw.Run(func(i int) gwtw.Optimizer {
		return NewAnnealer(n, sta.Config{Engine: sta.Fast}, int64(i))
	}, gwtw.Config{Population: 4, Rounds: 4, StepsPerRound: 40, Seed: 1})
	if res.BestCost <= 0 {
		t.Fatal("no result")
	}
	first := res.Trace[0][0]
	if res.BestCost > first*1.05 {
		t.Errorf("GWTW regressed: %v -> %v", first, res.BestCost)
	}
	// The winning netlist must still be valid.
	best := res.Best.(*Annealer)
	if err := best.N.Validate(); err != nil {
		t.Fatalf("best netlist invalid: %v", err)
	}
}

func TestFixDeterministic(t *testing.T) {
	a, b := tight(6), tight(6)
	ra := Fix(a, Config{Seed: 9})
	rb := Fix(b, Config{Seed: 9})
	if ra.AreaAfter != rb.AreaAfter || ra.WNSAfter != rb.WNSAfter {
		t.Error("same seed differs")
	}
}
