// Package sched provides the license/server-constrained dispatcher used
// to model concurrent tool runs: the paper's bandit orchestration is
// "constrained chiefly by compute and license resources", and this pool
// is that constraint.
package sched

import "sync"

// Pool limits concurrent task execution to a fixed number of licenses.
type Pool struct {
	licenses int

	mu      sync.Mutex
	active  int
	peak    int
	total   int
	waiting int
}

// NewPool creates a pool with n licenses (n < 1 is clamped to 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{licenses: n}
}

// Licenses returns the pool size.
func (p *Pool) Licenses() int { return p.licenses }

// Run executes the tasks with at most Licenses() of them in flight at a
// time, blocking until all complete.
func (p *Pool) Run(tasks []func()) {
	sem := make(chan struct{}, p.licenses)
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(f func()) {
			defer wg.Done()
			p.enter()
			f()
			p.leave()
			<-sem
		}(task)
	}
	wg.Wait()
}

// Map runs f over 0..n-1 under the license limit and collects results.
func Map[T any](p *Pool, n int, f func(i int) T) []T {
	out := make([]T, n)
	tasks := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() { out[i] = f(i) }
	}
	p.Run(tasks)
	return out
}

func (p *Pool) enter() {
	p.mu.Lock()
	p.active++
	p.total++
	if p.active > p.peak {
		p.peak = p.active
	}
	p.mu.Unlock()
}

func (p *Pool) leave() {
	p.mu.Lock()
	p.active--
	p.mu.Unlock()
}

// Stats reports usage counters: the peak concurrency observed and the
// total tasks executed.
func (p *Pool) Stats() (peak, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak, p.total
}
