// Package sched provides the license/server-constrained dispatcher used
// to model concurrent tool runs: the paper's bandit orchestration is
// "constrained chiefly by compute and license resources", and this pool
// is that constraint.
package sched

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/trace"
)

// Pool limits concurrent task execution to a fixed number of licenses.
type Pool struct {
	licenses int

	mu      sync.Mutex
	active  int
	peak    int
	total   int
	waiting int
	maxWait int
}

// NewPool creates a pool with n licenses (n < 1 is clamped to 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{licenses: n}
}

// Licenses returns the pool size.
func (p *Pool) Licenses() int { return p.licenses }

// Run executes the tasks with at most Licenses() of them in flight at a
// time, blocking until all complete.
func (p *Pool) Run(tasks []func()) {
	p.RunCtx(context.Background(), tasks) //nolint:errcheck // background ctx never cancels
}

// RunCtx executes the tasks under the license limit, blocking until all
// complete or ctx is cancelled. All tasks are spawned immediately and
// acquire a license from inside their goroutine, so task launch is never
// serialized behind a full pool. On cancellation, tasks still waiting
// for a license are abandoned (their functions never run), in-flight
// tasks finish, and ctx.Err() is returned — the early-abort path a
// doomed-run STOP uses to kill the rest of a campaign.
func (p *Pool) RunCtx(ctx context.Context, tasks []func()) error {
	sem := make(chan struct{}, p.licenses)
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			p.enqueue()
			// Queue-wait vs run time are separate spans, so the license-
			// contention signal (sched.wait p90 vs sched.run p90) falls
			// straight out of the histograms.
			_, wsp := trace.Start(ctx, "sched.wait")
			select {
			case sem <- struct{}{}:
				p.dequeue()
				// The select picks pseudo-randomly when both cases are
				// ready, so a task can win a license from an already-dead
				// context; re-check so a doomed-run STOP kills queued work
				// the moment it fires instead of letting stragglers run.
				if ctx.Err() != nil {
					wsp.EndWith(trace.Aborted)
					<-sem
					return
				}
				wsp.End()
			case <-ctx.Done():
				p.dequeue()
				wsp.EndWith(trace.Aborted)
				return
			}
			p.enter()
			_, rsp := trace.Start(ctx, "sched.run")
			f()
			rsp.End()
			p.leave()
			<-sem
		}(task)
	}
	wg.Wait()
	return ctx.Err()
}

// Map runs f over 0..n-1 under the license limit and collects results.
func Map[T any](p *Pool, n int, f func(i int) T) []T {
	out, _, _ := MapCtx(context.Background(), p, n, f)
	return out
}

// MapCtx runs f over 0..n-1 under the license limit with cancellation.
// out[i] holds f(i) exactly when ran[i] is true; slots of abandoned
// tasks keep their zero value with ran[i] false, so a genuinely computed
// zero value is never confused with a task that was cancelled before it
// started. The context error is returned on cancellation.
func MapCtx[T any](ctx context.Context, p *Pool, n int, f func(i int) T) (out []T, ran []bool, err error) {
	out = make([]T, n)
	ran = make([]bool, n)
	tasks := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() {
			out[i] = f(i)
			ran[i] = true
		}
	}
	err = p.RunCtx(ctx, tasks)
	return out, ran, err
}

func (p *Pool) enqueue() {
	p.mu.Lock()
	p.waiting++
	if p.waiting > p.maxWait {
		p.maxWait = p.waiting
	}
	p.mu.Unlock()
}

func (p *Pool) dequeue() {
	p.mu.Lock()
	p.waiting--
	p.mu.Unlock()
}

func (p *Pool) enter() {
	p.mu.Lock()
	p.active++
	p.total++
	if p.active > p.peak {
		p.peak = p.active
	}
	p.mu.Unlock()
}

func (p *Pool) leave() {
	p.mu.Lock()
	p.active--
	p.mu.Unlock()
}

// ErrHung is returned by Guard when the guarded function misses its
// deadline and is abandoned.
var ErrHung = errors.New("sched: watchdog deadline exceeded")

// Guard runs f under a hung-task watchdog: f receives a context that is
// cancelled when the deadline expires, and Guard returns ErrHung
// without waiting for f to come back — exactly as a flow manager reaps
// a wedged tool process and releases its license. With timeout <= 0 the
// watchdog is off and f runs inline on the caller's goroutine.
//
// Contract for f when a watchdog is armed: after its context is
// cancelled it must stop touching state shared with the caller, because
// the caller may already have moved on. Callers should have f compute
// into locals and publish them only after Guard returns nil (f is then
// known to have finished: the completion is synchronized).
func Guard(ctx context.Context, timeout time.Duration, f func(ctx context.Context)) error {
	if timeout <= 0 {
		f(ctx)
		return nil
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f(sctx)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		return ErrHung
	}
}

// Stats reports usage counters: the peak concurrency observed, the total
// tasks executed, and the peak number of tasks queued for a license (the
// license-contention signal).
func (p *Pool) Stats() (peak, total, maxWaiting int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak, p.total, p.maxWait
}
