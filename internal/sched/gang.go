package sched

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Gang is a persistent crew of workers for tight data-parallel rounds.
// Unlike Pool — which spawns a goroutine per task and meters licenses —
// a Gang keeps its workers hot between rounds so that an inner loop can
// fan the same index space out thousands of times (one round per
// annealing epoch, say) without paying a park/unpark round trip each
// time: on kernels where futex wake-ups are expensive (container
// hypervisors, gVisor-style sandboxes) that round trip can cost more
// than the round's work. Workers poll an atomic round pointer (with an
// occasional Gosched to stay preemptible) while rounds are flowing and
// only doze once the gang has been quiet for a while. The caller's goroutine always joins the
// round itself, so a Gang of one runs entirely inline and adds no
// synchronization.
type Gang struct {
	workers int
	cur     atomic.Pointer[gangRound]
	stop    atomic.Bool
}

// gangRound is one barrier's worth of work. Each Round allocates a
// fresh one, so a worker that wakes up holding a stale round can only
// claim from that stale round's exhausted counter — never from the
// next round's.
type gangRound struct {
	f      func(lo, hi int)
	n      int
	chunks int
	size   int
	next   atomic.Int64 // chunk claim counter (work stealing)
	done   atomic.Int64 // chunks completed
}

// hotPolls is how many atomic-load polls a worker burns waiting for the
// next round before switching to timed dozing. Polling is a cached
// pointer load — it occupies the worker's CPU but touches no scheduler
// state; a Gosched is mixed in only every yieldMask+1 polls to stay
// preemptible, because on sandboxed kernels every yield is a global
// runqueue transaction and a crew of yield-spinning workers measurably
// slows the caller's serial sections between rounds. Rounds in a hot
// loop arrive well within this budget; once it is exhausted the gang is
// probably between call sites and the worker stops consuming a CPU.
const (
	hotPolls  = 4 << 20
	yieldMask = 1<<16 - 1
)

// NewGang starts a crew of the given size (clamped to >= 1). Close must
// be called to release the workers.
func NewGang(workers int) *Gang {
	if workers < 1 {
		workers = 1
	}
	g := &Gang{workers: workers}
	for w := 1; w < workers; w++ {
		go g.work()
	}
	return g
}

// Workers returns the crew size.
func (g *Gang) Workers() int { return g.workers }

func (g *Gang) work() {
	var last *gangRound
	idle := 0
	for !g.stop.Load() {
		r := g.cur.Load()
		if r == nil || r == last {
			if idle < hotPolls {
				idle++
				if idle&yieldMask == 0 {
					runtime.Gosched()
				}
			} else {
				time.Sleep(100 * time.Microsecond)
			}
			continue
		}
		last, idle = r, 0
		r.run()
	}
}

// run claims and executes chunks until the round is drained. Chunks are
// claimed through the round's own atomic counter, so a late worker
// simply steals whatever is left — including nothing.
func (r *gangRound) run() {
	for {
		c := int(r.next.Add(1) - 1)
		if c >= r.chunks {
			return
		}
		lo := c * r.size
		if hi := min(lo+r.size, r.n); lo < hi {
			r.f(lo, hi)
		}
		r.done.Add(1)
	}
}

// Round splits [0,n) into contiguous chunks and runs f(lo, hi) on each
// concurrently, returning only when every chunk has finished (a full
// barrier). Chunks are finer than the worker count so the crew can
// steal around stragglers. f must confine its writes to per-index or
// per-chunk state; reads of shared state are safe because the caller
// mutates nothing until Round returns. Round must not be called
// concurrently with itself.
func (g *Gang) Round(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if g.workers == 1 {
		f(0, n)
		return
	}
	chunks := min(4*g.workers, n)
	r := &gangRound{f: f, n: n, chunks: chunks, size: (n + chunks - 1) / chunks}
	g.cur.Store(r)
	r.run()
	for i := 1; r.done.Load() != int64(chunks); i++ {
		if i&yieldMask == 0 {
			runtime.Gosched()
		}
	}
}

// Close releases the workers. The Gang must not be used afterwards.
func (g *Gang) Close() { g.stop.Store(true) }
