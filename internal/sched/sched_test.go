package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(3)
	var count int64
	tasks := make([]func(), 20)
	for i := range tasks {
		tasks[i] = func() { atomic.AddInt64(&count, 1) }
	}
	p.Run(tasks)
	if count != 20 {
		t.Fatalf("ran %d tasks", count)
	}
	peak, total := p.Stats()
	if total != 20 {
		t.Fatalf("total %d", total)
	}
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeded 3 licenses", peak)
	}
}

func TestPoolEnforcesLimit(t *testing.T) {
	p := NewPool(2)
	var active, violations int64
	tasks := make([]func(), 12)
	for i := range tasks {
		tasks[i] = func() {
			n := atomic.AddInt64(&active, 1)
			if n > 2 {
				atomic.AddInt64(&violations, 1)
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&active, -1)
		}
	}
	p.Run(tasks)
	if violations > 0 {
		t.Fatalf("%d concurrency violations", violations)
	}
	peak, _ := p.Stats()
	if peak != 2 {
		t.Errorf("peak %d, want 2 (tasks should saturate the pool)", peak)
	}
}

func TestPoolClampsToOne(t *testing.T) {
	p := NewPool(0)
	if p.Licenses() != 1 {
		t.Fatalf("licenses %d", p.Licenses())
	}
	done := false
	p.Run([]func(){func() { done = true }})
	if !done {
		t.Fatal("task not run")
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	p := NewPool(4)
	out := Map(p, 10, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestEmptyRun(t *testing.T) {
	p := NewPool(2)
	p.Run(nil)
	if _, total := p.Stats(); total != 0 {
		t.Fatal("phantom tasks")
	}
}
