package sched

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(3)
	var count int64
	tasks := make([]func(), 20)
	for i := range tasks {
		tasks[i] = func() { atomic.AddInt64(&count, 1) }
	}
	p.Run(tasks)
	if count != 20 {
		t.Fatalf("ran %d tasks", count)
	}
	peak, total, _ := p.Stats()
	if total != 20 {
		t.Fatalf("total %d", total)
	}
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeded 3 licenses", peak)
	}
}

func TestPoolEnforcesLimit(t *testing.T) {
	p := NewPool(2)
	var active, violations int64
	tasks := make([]func(), 12)
	for i := range tasks {
		tasks[i] = func() {
			n := atomic.AddInt64(&active, 1)
			if n > 2 {
				atomic.AddInt64(&violations, 1)
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&active, -1)
		}
	}
	p.Run(tasks)
	if violations > 0 {
		t.Fatalf("%d concurrency violations", violations)
	}
	peak, _, maxWait := p.Stats()
	if peak != 2 {
		t.Errorf("peak %d, want 2 (tasks should saturate the pool)", peak)
	}
	if maxWait == 0 {
		t.Error("12 tasks on 2 licenses should have queued, maxWaiting = 0")
	}
}

func TestPoolClampsToOne(t *testing.T) {
	p := NewPool(0)
	if p.Licenses() != 1 {
		t.Fatalf("licenses %d", p.Licenses())
	}
	done := false
	p.Run([]func(){func() { done = true }})
	if !done {
		t.Fatal("task not run")
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	p := NewPool(4)
	out := Map(p, 10, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestEmptyRun(t *testing.T) {
	p := NewPool(2)
	p.Run(nil)
	if _, total, _ := p.Stats(); total != 0 {
		t.Fatal("phantom tasks")
	}
}

// TestAdmissionNotSerialized is the regression test for the old
// submitter-blocks-on-semaphore bug: with a full pool, later tasks must
// already be spawned (counted as waiting) while early tasks run, so a
// slow head task cannot delay the *launch* of the tail.
func TestAdmissionNotSerialized(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	block := func() { <-release }
	tasks := []func(){block, block, block}
	done := make(chan struct{})
	go func() {
		p.Run(tasks)
		close(done)
	}()
	// Whichever task holds the only license blocks on release, so the
	// other two must both be queued — which only happens if Run spawns
	// every task up front instead of admitting them one at a time.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, maxWait := p.Stats(); maxWait >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tail tasks were not spawned while head task held the license")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	if _, total, _ := p.Stats(); total != 3 {
		t.Fatalf("total %d", total)
	}
}

func TestRunCtxCancelAbandonsQueuedTasks(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	block := make(chan struct{})
	var ran int64
	tasks := make([]func(), 8)
	for i := range tasks {
		tasks[i] = func() { atomic.AddInt64(&ran, 1); <-block }
	}
	errc := make(chan error, 1)
	go func() { errc <- p.RunCtx(ctx, tasks) }()

	waitFor := func(cond func() bool, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	queued := func() int { p.mu.Lock(); defer p.mu.Unlock(); return p.waiting }
	// All tasks block, so one holds the only license and the other 7
	// must already be spawned and queued — the spawn-first admission
	// the old submitter-side semaphore serialized away.
	waitFor(func() bool { return queued() == 7 }, "tail tasks to queue")
	cancel() // the doomed-run STOP
	// The license is still held, so every queued task can only abandon.
	waitFor(func() bool { return queued() == 0 }, "queued tasks to abandon")
	close(block)
	if err := <-errc; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&ran); got != 1 {
		t.Fatalf("ran %d tasks, want exactly the in-flight one", got)
	}
}

// TestMapCtxPreCancelledRunsNothing is the regression test for the
// acquire-after-cancel race: with a context that is already dead when a
// task wins a license, the task must still be abandoned, so a
// pre-cancelled MapCtx executes exactly zero tasks.
func TestMapCtxPreCancelledRunsNothing(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed int64
	out, ran, err := MapCtx(ctx, p, 100, func(i int) int {
		atomic.AddInt64(&executed, 1)
		return i + 1
	})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if executed != 0 {
		t.Fatalf("pre-cancelled ctx executed %d tasks, want 0", executed)
	}
	if len(out) != 100 || len(ran) != 100 {
		t.Fatalf("len out %d, len ran %d", len(out), len(ran))
	}
	for i := range out {
		if ran[i] || out[i] != 0 {
			t.Fatalf("slot %d: ran=%t out=%d, want abandoned zero", i, ran[i], out[i])
		}
	}
}

// TestMapCtxRanDistinguishesComputedZeros checks that a task whose
// result is genuinely the zero value is distinguishable from an
// abandoned slot via ran.
func TestMapCtxRanDistinguishesComputedZeros(t *testing.T) {
	p := NewPool(2)
	out, ran, err := MapCtx(context.Background(), p, 6, func(i int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if !ran[i] {
			t.Fatalf("slot %d not marked ran", i)
		}
		if out[i] != 0 {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}
