package sched

import "sync/atomic"

// Slots is a fixed set of licenses for work that must never queue:
// speculative flow stages take a slot only if one is free right now and
// otherwise simply do not run. Unlike Pool, acquiring never blocks, so
// speculation can never delay a real stage behind it — the worst case
// for a speculative chain is that it is skipped.
//
// A nil *Slots is valid and unlimited (every TryAcquire succeeds),
// which keeps the zero-configuration path of flow.RunConfig cheap.
type Slots struct {
	cap  int64
	used atomic.Int64

	taken   atomic.Int64
	skipped atomic.Int64
}

// NewSlots creates a slot set of size n (n < 1 is clamped to 1).
func NewSlots(n int) *Slots {
	if n < 1 {
		n = 1
	}
	return &Slots{cap: int64(n)}
}

// Cap returns the slot count (0 for the nil, unlimited set).
func (s *Slots) Cap() int {
	if s == nil {
		return 0
	}
	return int(s.cap)
}

// TryAcquire takes a slot if one is free and reports whether it did.
// It never blocks; a false return means the caller should skip its
// speculative work, not wait for capacity.
func (s *Slots) TryAcquire() bool {
	if s == nil {
		return true
	}
	for {
		u := s.used.Load()
		if u >= s.cap {
			s.skipped.Add(1)
			return false
		}
		if s.used.CompareAndSwap(u, u+1) {
			s.taken.Add(1)
			return true
		}
	}
}

// Release returns a slot taken by TryAcquire. Releasing without a
// matching acquire is a programming error and panics: a miscounted slot
// set would silently raise the speculation limit.
func (s *Slots) Release() {
	if s == nil {
		return
	}
	if s.used.Add(-1) < 0 {
		panic("sched: Slots.Release without TryAcquire")
	}
}

// Stats reports how many acquisitions succeeded and how many were
// refused because every slot was busy (the speculation-skipped signal).
func (s *Slots) Stats() (taken, skipped int64) {
	if s == nil {
		return 0, 0
	}
	return s.taken.Load(), s.skipped.Load()
}
