package sched

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLedgerGrantReleaseRevoke(t *testing.T) {
	l := NewLedger(3)
	if !l.TryGrant("a") || !l.TryGrant("a") || !l.TryGrant("b") {
		t.Fatal("grants under capacity must succeed")
	}
	if l.TryGrant("c") {
		t.Fatal("grant over capacity must fail")
	}
	if got := l.InUse("a"); got != 2 {
		t.Fatalf("InUse(a) = %d, want 2", got)
	}
	l.Release("a")
	if !l.TryGrant("c") {
		t.Fatal("released slot must be grantable")
	}
	if n := l.Revoke("a"); n != 1 {
		t.Fatalf("Revoke(a) = %d, want 1", n)
	}
	if n := l.Revoke("a"); n != 0 {
		t.Fatalf("second Revoke(a) = %d, want 0", n)
	}
	st := l.Stats()
	if st.Used != 2 || st.Granted != 4 || st.Released != 1 || st.Revoked != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLedgerReleaseWithoutGrantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without grant must panic")
		}
	}()
	NewLedger(1).Release("ghost")
}

func TestLedgerAcquireBlocksUntilRelease(t *testing.T) {
	l := NewLedger(1)
	if !l.TryGrant("a") {
		t.Fatal("first grant must succeed")
	}
	done := make(chan error, 1)
	go func() { done <- l.Acquire(context.Background(), "b") }()
	select {
	case <-done:
		t.Fatal("Acquire must block while the pool is full")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release("a")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Acquire after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake on release")
	}
}

func TestLedgerAcquireCancel(t *testing.T) {
	l := NewLedger(1)
	l.TryGrant("a")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx, "b") }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled Acquire did not return")
	}
	if got := l.InUse("b"); got != 0 {
		t.Fatalf("cancelled acquirer holds %d slots", got)
	}
}

func TestLedgerPickFairDeterministic(t *testing.T) {
	l := NewLedger(10)
	cands := []string{"t2", "t1", "t3"}
	// All even: lexicographically first wins.
	if o, _ := l.PickFair(cands); o != "t1" {
		t.Fatalf("even pick = %s, want t1", o)
	}
	l.TryGrant("t1")
	l.TryGrant("t1")
	l.TryGrant("t2")
	// t3 holds nothing.
	if o, _ := l.PickFair(cands); o != "t3" {
		t.Fatalf("pick = %s, want t3", o)
	}
	// Weighted: t1 at weight 4 has usage 0.5, below t2's 1 and t3's +1.
	l.SetWeight("t1", 4)
	l.TryGrant("t3")
	if o, _ := l.PickFair(cands); o != "t1" {
		t.Fatalf("weighted pick = %s, want t1", o)
	}
	if _, ok := l.PickFair(nil); ok {
		t.Fatal("PickFair(nil) must report !ok")
	}
}

func TestLedgerConcurrentAccounting(t *testing.T) {
	l := NewLedger(4)
	owners := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := owners[i%len(owners)]
			for j := 0; j < 50; j++ {
				if err := l.Acquire(context.Background(), o); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				l.Release(o)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Used != 0 || len(st.Owners) != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
	if st.Granted != 600 || st.Released != 600 {
		t.Fatalf("granted/released = %d/%d, want 600/600", st.Granted, st.Released)
	}
}
