package sched

import (
	"sync/atomic"
	"testing"
)

func TestGangRoundCoversIndexSpace(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 3, 7, 64, 1000} {
			g := NewGang(workers)
			hits := make([]int32, n)
			g.Round(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			g.Close()
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestGangRoundReusable(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	var total atomic.Int64
	for round := 0; round < 200; round++ {
		g.Round(37, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	}
	if got := total.Load(); got != 200*37 {
		t.Fatalf("200 rounds of 37 indices covered %d, want %d", got, 200*37)
	}
}

func TestGangRoundIsBarrier(t *testing.T) {
	g := NewGang(8)
	defer g.Close()
	buf := make([]int, 256)
	for round := 1; round <= 50; round++ {
		r := round
		g.Round(len(buf), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				buf[i] = r
			}
		})
		// If Round returned before every chunk finished, a stale value
		// from the previous round would still be visible here.
		for i, v := range buf {
			if v != r {
				t.Fatalf("round %d: index %d holds %d after barrier", r, i, v)
			}
		}
	}
}

func TestGangClampsWorkers(t *testing.T) {
	g := NewGang(0)
	defer g.Close()
	if g.Workers() != 1 {
		t.Fatalf("NewGang(0) workers = %d, want 1", g.Workers())
	}
	ran := false
	g.Round(5, func(lo, hi int) {
		if lo == 0 && hi == 5 {
			ran = true
		}
	})
	if !ran {
		t.Fatal("single-worker gang should run the whole range inline")
	}
}
