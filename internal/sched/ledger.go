package sched

import (
	"context"
	"sort"
	"sync"
)

// Ledger is the remote slot accountant: it tracks how many of a shared
// pool of slots ("licenses") each named owner — a worker node, a tenant
// — holds right now, and arbitrates who gets the next free one. The
// single-process Pool counts anonymous goroutines; the Ledger is its
// distributed sibling, where the holders are remote and identified, the
// grant decision must be fair across competing owners, and the caller
// (a coordinator, a front door) needs to revoke everything a dead owner
// held in one call.
//
// Fairness is deterministic max-min: the next grant goes to the
// candidate holding the fewest slots relative to its weight, ties
// broken by name — so two coordinators replaying the same request
// sequence make identical grant decisions.
type Ledger struct {
	total int

	mu     sync.Mutex
	cond   *sync.Cond
	inUse  map[string]int
	weight map[string]int
	used   int

	granted  int64
	released int64
	revoked  int64
}

// NewLedger creates a ledger over total shared slots (total < 1 is
// clamped to 1).
func NewLedger(total int) *Ledger {
	if total < 1 {
		total = 1
	}
	l := &Ledger{total: total, inUse: map[string]int{}, weight: map[string]int{}}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Total returns the shared slot count.
func (l *Ledger) Total() int { return l.total }

// SetWeight sets an owner's fair-share weight (default 1; w < 1 is
// clamped to 1). An owner with weight 2 is entitled to twice the slots
// of a weight-1 owner before it is considered "ahead".
func (l *Ledger) SetWeight(owner string, w int) {
	if w < 1 {
		w = 1
	}
	l.mu.Lock()
	l.weight[owner] = w
	l.mu.Unlock()
}

// TryGrant takes one slot for owner if any is free, without blocking.
func (l *Ledger) TryGrant(owner string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used >= l.total {
		return false
	}
	l.grantLocked(owner)
	return true
}

// Acquire blocks until a slot is free (or ctx is done) and takes it for
// owner. It returns ctx.Err() on cancellation, nil on success.
func (l *Ledger) Acquire(ctx context.Context, owner string) error {
	// Wake the wait loop when the context dies: cond has no native
	// cancellation, so a watcher broadcasts on ctx.Done.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.used >= l.total {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		l.cond.Wait()
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	l.grantLocked(owner)
	return nil
}

// grantLocked records one grant. Caller holds l.mu.
func (l *Ledger) grantLocked(owner string) {
	l.inUse[owner]++
	l.used++
	l.granted++
}

// Release returns one of owner's slots. Releasing a slot the owner does
// not hold is a programming error and panics, like Slots.Release: a
// miscounted ledger silently inflates someone's fair share.
func (l *Ledger) Release(owner string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse[owner] <= 0 {
		panic("sched: Ledger.Release for owner holding no slots: " + owner)
	}
	l.inUse[owner]--
	if l.inUse[owner] == 0 {
		delete(l.inUse, owner)
	}
	l.used--
	l.released++
	l.cond.Signal()
}

// Revoke releases every slot owner holds — the dead-node path: a
// coordinator that declares a worker lost must free its licenses in one
// step before reassigning its points. Returns how many were freed.
func (l *Ledger) Revoke(owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.inUse[owner]
	if n == 0 {
		return 0
	}
	delete(l.inUse, owner)
	l.used -= n
	l.revoked += int64(n)
	l.cond.Broadcast()
	return n
}

// InUse reports how many slots owner currently holds.
func (l *Ledger) InUse(owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse[owner]
}

// PickFair chooses which candidate should receive the next slot:
// the one with the lowest weighted usage (inUse/weight), ties broken by
// name so the decision is deterministic. ok is false when candidates is
// empty. PickFair does not grant — callers follow up with TryGrant or
// Acquire for the picked owner.
func (l *Ledger) PickFair(candidates []string) (owner string, ok bool) {
	if len(candidates) == 0 {
		return "", false
	}
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	l.mu.Lock()
	defer l.mu.Unlock()
	best := sorted[0]
	bestScore := l.scoreLocked(best)
	for _, c := range sorted[1:] {
		if s := l.scoreLocked(c); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best, true
}

// scoreLocked is owner's weighted usage. Caller holds l.mu.
func (l *Ledger) scoreLocked(owner string) float64 {
	w := l.weight[owner]
	if w < 1 {
		w = 1
	}
	return float64(l.inUse[owner]) / float64(w)
}

// LedgerStats is a point-in-time snapshot of the ledger.
type LedgerStats struct {
	Total    int
	Used     int
	Owners   map[string]int
	Granted  int64
	Released int64
	Revoked  int64
}

// Stats snapshots the ledger coherently (one lock, all fields).
func (l *Ledger) Stats() LedgerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	owners := make(map[string]int, len(l.inUse))
	for k, v := range l.inUse {
		owners[k] = v
	}
	return LedgerStats{
		Total: l.total, Used: l.used, Owners: owners,
		Granted: l.granted, Released: l.released, Revoked: l.revoked,
	}
}
