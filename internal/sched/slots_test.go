package sched

import (
	"sync"
	"testing"
)

func TestSlotsNeverExceedCap(t *testing.T) {
	s := NewSlots(3)
	var mu sync.Mutex
	active, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !s.TryAcquire() {
				return
			}
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			mu.Lock()
			active--
			mu.Unlock()
			s.Release()
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Errorf("peak concurrency %d exceeded cap 3", peak)
	}
	taken, skipped := s.Stats()
	if taken+skipped != 64 {
		t.Errorf("taken %d + skipped %d != 64 attempts", taken, skipped)
	}
}

func TestSlotsRefuseWhenFull(t *testing.T) {
	s := NewSlots(1)
	if !s.TryAcquire() {
		t.Fatal("first acquire on an empty slot set refused")
	}
	if s.TryAcquire() {
		t.Fatal("acquire succeeded past the cap")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("acquire refused after a release freed the slot")
	}
	s.Release()
	if _, skipped := s.Stats(); skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
}

func TestSlotsNilIsUnlimited(t *testing.T) {
	var s *Slots
	for i := 0; i < 10; i++ {
		if !s.TryAcquire() {
			t.Fatal("nil Slots refused an acquire")
		}
	}
	s.Release() // must not panic
	if s.Cap() != 0 {
		t.Errorf("nil Slots cap = %d, want 0", s.Cap())
	}
}

func TestSlotsClampAndPanic(t *testing.T) {
	s := NewSlots(0)
	if s.Cap() != 1 {
		t.Errorf("cap = %d, want clamp to 1", s.Cap())
	}
	defer func() {
		if recover() == nil {
			t.Error("unbalanced Release did not panic")
		}
	}()
	s.Release()
}
