package sched

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestGuardCompletesInTime(t *testing.T) {
	ran := false
	err := Guard(context.Background(), time.Second, func(ctx context.Context) { ran = true })
	if err != nil || !ran {
		t.Fatalf("Guard = %v, ran = %t; want nil, true", err, ran)
	}
}

func TestGuardInlineWhenDisabled(t *testing.T) {
	ran := false
	if err := Guard(context.Background(), 0, func(ctx context.Context) { ran = true }); err != nil || !ran {
		t.Fatalf("Guard(0) = %v, ran = %t; want nil, true", err, ran)
	}
}

func TestGuardReapsHungTask(t *testing.T) {
	released := make(chan struct{})
	start := time.Now()
	err := Guard(context.Background(), 20*time.Millisecond, func(ctx context.Context) {
		<-ctx.Done() // a wedged tool that only dies when reaped
		close(released)
	})
	if !errors.Is(err, ErrHung) {
		t.Fatalf("Guard on hung task = %v, want ErrHung", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("guarded function never saw its context cancelled")
	}
}

func TestGuardParentCancelReleasesCooperativeTask(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	// A cooperative task returns once cancelled; Guard then reports
	// normal completion and the caller's ctx check sees the abort.
	err := Guard(ctx, time.Minute, func(sctx context.Context) { <-sctx.Done() })
	if err != nil {
		t.Fatalf("Guard on cooperative cancel = %v, want nil", err)
	}
	if ctx.Err() == nil {
		t.Fatal("parent context should be cancelled")
	}
}
