// Package multistart implements adaptive multistart (the paper's Fig.
// 6(b), refs [5][12]): local optimization from many starts, where later
// start points are constructed from the structure of earlier
// locally-minimal solutions, exploiting the "big valley" property of
// combinatorial cost landscapes (good local minima cluster near each
// other and near the global minimum).
package multistart

import (
	"math/rand"

	"repro/internal/ml"
)

// Problem is a combinatorial optimization instance with a solution-space
// metric (needed to measure and exploit big-valley structure).
type Problem interface {
	// RandomStart produces a fresh random solution.
	RandomStart(rng *rand.Rand) any
	// LocalOpt improves a solution in place for the given step budget
	// and returns it (may return a new value).
	LocalOpt(s any, rng *rand.Rand, steps int) any
	// Cost evaluates a solution.
	Cost(s any) float64
	// Distance is a metric between solutions.
	Distance(a, b any) float64
	// Combine constructs a new start from elite solutions (e.g. by
	// merging/voting). It should bias toward the elites' common
	// structure.
	Combine(elite []any, rng *rand.Rand) any
}

// Config parameterizes a multistart run.
type Config struct {
	Starts     int     // total local optimizations (default 12)
	ProbeFrac  float64 // fraction of starts used for the random probe phase (default 0.4)
	LocalSteps int     // local-search budget per start (default 500)
	EliteSize  int     // elites fed to Combine (default 3)
	Seed       int64
}

func (c Config) withDefaults() Config {
	if c.Starts <= 0 {
		c.Starts = 12
	}
	if c.ProbeFrac <= 0 || c.ProbeFrac >= 1 {
		c.ProbeFrac = 0.4
	}
	if c.LocalSteps <= 0 {
		c.LocalSteps = 500
	}
	if c.EliteSize <= 0 {
		c.EliteSize = 3
	}
	return c
}

// Result summarizes a run.
type Result struct {
	BestCost float64
	Best     any
	// Costs of every local minimum found, in discovery order.
	Costs []float64
	// CostDistanceCorr is the Pearson correlation between a local
	// minimum's cost and its distance to the best minimum — positive
	// correlation is the big-valley signature of Fig. 6(b).
	CostDistanceCorr float64
	AdaptiveStarts   int
}

// Adaptive runs big-valley-guided multistart: a probe phase of random
// starts, then the remaining budget from starts constructed out of the
// current elite set.
func Adaptive(p Problem, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	probes := int(float64(cfg.Starts) * cfg.ProbeFrac)
	if probes < 2 {
		probes = 2
	}
	if probes > cfg.Starts {
		probes = cfg.Starts
	}

	var minima []any
	res := &Result{}
	runStart := func(start any) {
		s := p.LocalOpt(start, rng, cfg.LocalSteps)
		minima = append(minima, s)
		res.Costs = append(res.Costs, p.Cost(s))
	}
	for i := 0; i < probes; i++ {
		runStart(p.RandomStart(rng))
	}
	for i := probes; i < cfg.Starts; i++ {
		elite := eliteOf(p, minima, cfg.EliteSize)
		runStart(p.Combine(elite, rng))
		res.AdaptiveStarts++
	}

	best := 0
	for i := range minima {
		if res.Costs[i] < res.Costs[best] {
			best = i
		}
	}
	res.Best = minima[best]
	res.BestCost = res.Costs[best]

	// Big-valley measurement: cost vs distance-to-best over all minima
	// except the best itself.
	var costs, dists []float64
	for i := range minima {
		if i == best {
			continue
		}
		costs = append(costs, res.Costs[i])
		dists = append(dists, p.Distance(minima[i], minima[best]))
	}
	res.CostDistanceCorr = ml.Pearson(costs, dists)
	return res
}

// Random runs the naive baseline: every start random, same total budget.
func Random(p Problem, cfg Config) *Result {
	cfg = cfg.withDefaults()
	cfg.ProbeFrac = 0.999999 // all starts are probes
	r := Adaptive(p, cfg)
	r.AdaptiveStarts = 0
	return r
}

// eliteOf returns the k lowest-cost minima.
func eliteOf(p Problem, minima []any, k int) []any {
	type sc struct {
		s any
		c float64
	}
	scored := make([]sc, len(minima))
	for i, s := range minima {
		scored[i] = sc{s: s, c: p.Cost(s)}
	}
	// Partial selection sort: k is tiny.
	if k > len(scored) {
		k = len(scored)
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(scored); j++ {
			if scored[j].c < scored[min].c {
				min = j
			}
		}
		scored[i], scored[min] = scored[min], scored[i]
	}
	elite := make([]any, k)
	for i := 0; i < k; i++ {
		elite[i] = scored[i].s
	}
	return elite
}
