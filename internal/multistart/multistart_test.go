package multistart

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

// toy is a deceptive continuous problem with big-valley structure: cost
// is a paraboloid at the origin plus sinusoidal ripple; local opt is
// coordinate descent with small steps.
type toy struct{ dim int }

func (t toy) RandomStart(rng *rand.Rand) any {
	v := make([]float64, t.dim)
	for i := range v {
		v[i] = rng.Float64()*20 - 10
	}
	return v
}

func (t toy) Cost(s any) float64 {
	v := s.([]float64)
	var c float64
	for _, x := range v {
		c += x*x + 3*math.Sin(2*x)*math.Sin(2*x)
	}
	return c
}

func (t toy) LocalOpt(s any, rng *rand.Rand, steps int) any {
	v := append([]float64(nil), s.([]float64)...)
	for it := 0; it < steps; it++ {
		i := rng.Intn(len(v))
		old := v[i]
		v[i] += rng.NormFloat64() * 0.3
		if t.Cost(v) > t.costWith(v, i, old) {
			v[i] = old
		}
	}
	return v
}

func (t toy) costWith(v []float64, i int, x float64) float64 {
	old := v[i]
	v[i] = x
	c := t.Cost(v)
	v[i] = old
	return c
}

func (t toy) Distance(a, b any) float64 {
	va, vb := a.([]float64), b.([]float64)
	var d float64
	for i := range va {
		d += math.Abs(va[i] - vb[i])
	}
	return d / float64(len(va))
}

func (t toy) Combine(elite []any, rng *rand.Rand) any {
	v := make([]float64, t.dim)
	for i := range v {
		pick := elite[rng.Intn(len(elite))].([]float64)
		v[i] = pick[i] + rng.NormFloat64()*0.5
	}
	return v
}

func TestAdaptiveOnToy(t *testing.T) {
	p := toy{dim: 6}
	res := Adaptive(p, Config{Starts: 16, LocalSteps: 400, Seed: 1})
	if res.BestCost > 5 {
		t.Errorf("best cost %v too high", res.BestCost)
	}
	if res.AdaptiveStarts == 0 {
		t.Error("no adaptive starts executed")
	}
	if len(res.Costs) != 16 {
		t.Errorf("%d costs recorded", len(res.Costs))
	}
}

func TestBigValleyCorrelationPositive(t *testing.T) {
	// On a big-valley landscape, worse local minima sit farther from
	// the best one; average correlation over seeds should be positive.
	p := toy{dim: 6}
	var corr float64
	for seed := int64(0); seed < 8; seed++ {
		res := Random(p, Config{Starts: 14, LocalSteps: 400, Seed: seed})
		corr += res.CostDistanceCorr
	}
	if corr/8 <= 0 {
		t.Errorf("mean cost-distance correlation %v, want > 0", corr/8)
	}
}

func TestAdaptiveBeatsRandomOnAverage(t *testing.T) {
	p := toy{dim: 8}
	var a, r float64
	for seed := int64(0); seed < 8; seed++ {
		cfg := Config{Starts: 12, LocalSteps: 250, Seed: seed}
		a += Adaptive(p, cfg).BestCost
		r += Random(p, cfg).BestCost
	}
	if a >= r {
		t.Errorf("adaptive mean %v not better than random mean %v", a/8, r/8)
	}
}

func TestRandomHasNoAdaptiveStarts(t *testing.T) {
	res := Random(toy{dim: 3}, Config{Starts: 6, LocalSteps: 50, Seed: 1})
	if res.AdaptiveStarts != 0 {
		t.Errorf("random baseline ran %d adaptive starts", res.AdaptiveStarts)
	}
}

func TestDeterministic(t *testing.T) {
	p := toy{dim: 4}
	cfg := Config{Starts: 8, LocalSteps: 100, Seed: 5}
	if Adaptive(p, cfg).BestCost != Adaptive(p, cfg).BestCost {
		t.Error("same seed differs")
	}
}

func placementProblem(seed int64) (*PlacementProblem, *netlist.Netlist) {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
	return NewPlacementProblem(n), n
}

func TestPlacementProblemInterfaces(t *testing.T) {
	p, n := placementProblem(1)
	rng := rand.New(rand.NewSource(1))
	s := p.RandomStart(rng).(Perm)
	if len(s) != n.NumCells() {
		t.Fatalf("perm length %d", len(s))
	}
	// Permutation must be a bijection.
	seen := make([]bool, len(s))
	for _, slot := range s {
		if seen[slot] {
			t.Fatal("duplicate slot in random start")
		}
		seen[slot] = true
	}
	c0 := p.Cost(s)
	opt := p.LocalOpt(s, rng, 2000)
	if p.Cost(opt) > c0 {
		t.Errorf("local opt worsened cost: %v -> %v", c0, p.Cost(opt))
	}
	// Local opt must preserve the permutation property.
	seen = make([]bool, len(s))
	for _, slot := range opt.(Perm) {
		if seen[slot] {
			t.Fatal("duplicate slot after local opt")
		}
		seen[slot] = true
	}
}

func TestPlacementCombinePermutes(t *testing.T) {
	p, _ := placementProblem(2)
	rng := rand.New(rand.NewSource(2))
	a := p.LocalOpt(p.RandomStart(rng), rng, 500)
	b := p.LocalOpt(p.RandomStart(rng), rng, 500)
	c := p.LocalOpt(p.RandomStart(rng), rng, 500)
	child := p.Combine([]any{a, b, c}, rng).(Perm)
	seen := make([]bool, len(child))
	for _, slot := range child {
		if seen[slot] {
			t.Fatal("combine broke the permutation")
		}
		seen[slot] = true
	}
	// Child should be nearer the best elite than a random solution is.
	randDist := p.Distance(p.RandomStart(rng), a)
	childDist := p.Distance(child, a)
	if childDist >= randDist {
		t.Errorf("combine offspring not biased toward elite: %v vs random %v", childDist, randDist)
	}
}

func TestPlacementCombineSingleElite(t *testing.T) {
	p, _ := placementProblem(3)
	rng := rand.New(rand.NewSource(3))
	a := p.RandomStart(rng)
	child := p.Combine([]any{a}, rng).(Perm)
	seen := make([]bool, len(child))
	for _, slot := range child {
		if seen[slot] {
			t.Fatal("single-elite combine broke the permutation")
		}
		seen[slot] = true
	}
}

func TestPlacementApply(t *testing.T) {
	p, n := placementProblem(4)
	rng := rand.New(rand.NewSource(4))
	s := p.RandomStart(rng)
	p.Apply(s)
	if got := p.Cost(s); math.Abs(got-n.TotalHPWL()) > 1e-6 {
		t.Errorf("applied cost %v != netlist HPWL %v", got, n.TotalHPWL())
	}
}

func TestPlacementAdaptiveRuns(t *testing.T) {
	p, _ := placementProblem(5)
	res := Adaptive(p, Config{Starts: 6, LocalSteps: 800, Seed: 1})
	if res.BestCost <= 0 {
		t.Fatal("no placement cost")
	}
	random := Random(p, Config{Starts: 6, LocalSteps: 800, Seed: 1})
	if res.BestCost > random.BestCost*1.15 {
		t.Errorf("adaptive placement %v much worse than random %v", res.BestCost, random.BestCost)
	}
}
