package multistart

import (
	"math"
	"math/rand"

	"repro/internal/netlist"
)

// PlacementProblem adapts standard-cell placement to the multistart
// Problem interface: solutions are permutations of cells onto a fixed
// slot set, local search is swap-based hill climbing on HPWL, and
// Combine is an elite crossover that moves cells toward positions they
// occupy in other elite solutions.
type PlacementProblem struct {
	n      *netlist.Netlist
	slotsX []float64
	slotsY []float64
	netsOf [][]int
}

// Perm is a placement solution: Perm[cell] = slot index.
type Perm []int

// NewPlacementProblem builds the problem around a netlist. The current
// instance coordinates define the legal slot set, so call it after an
// initial placement (e.g. netlist.SpreadInitial or place.Place).
func NewPlacementProblem(n *netlist.Netlist) *PlacementProblem {
	p := &PlacementProblem{n: n}
	p.slotsX = make([]float64, n.NumCells())
	p.slotsY = make([]float64, n.NumCells())
	for i := range n.Insts {
		p.slotsX[i] = n.Insts[i].X
		p.slotsY[i] = n.Insts[i].Y
	}
	p.netsOf = make([][]int, n.NumCells())
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.IsClock {
			continue
		}
		if net.Driver >= 0 {
			p.netsOf[net.Driver] = append(p.netsOf[net.Driver], i)
		}
		for _, s := range net.Sinks {
			p.netsOf[s.Inst] = append(p.netsOf[s.Inst], i)
		}
	}
	return p
}

// coords returns the location of a cell under a permutation.
func (p *PlacementProblem) coords(perm Perm, cell int) (float64, float64) {
	return p.slotsX[perm[cell]], p.slotsY[perm[cell]]
}

// netHPWL computes one net's HPWL under a permutation.
func (p *PlacementProblem) netHPWL(perm Perm, netID int) float64 {
	net := &p.n.Nets[netID]
	first := true
	var minX, maxX, minY, maxY float64
	add := func(cell int) {
		x, y := p.coords(perm, cell)
		if first {
			minX, maxX, minY, maxY = x, x, y, y
			first = false
			return
		}
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	if net.Driver >= 0 {
		add(net.Driver)
	}
	for _, s := range net.Sinks {
		add(s.Inst)
	}
	if first {
		return 0
	}
	return (maxX - minX) + (maxY - minY)
}

// RandomStart implements Problem.
func (p *PlacementProblem) RandomStart(rng *rand.Rand) any {
	return Perm(rng.Perm(p.n.NumCells()))
}

// LocalOpt implements Problem: first-improvement swap hill climbing.
func (p *PlacementProblem) LocalOpt(s any, rng *rand.Rand, steps int) any {
	perm := append(Perm(nil), s.(Perm)...)
	numCells := len(perm)
	for it := 0; it < steps; it++ {
		a, b := rng.Intn(numCells), rng.Intn(numCells)
		if a == b {
			continue
		}
		var before float64
		for _, nid := range p.netsOf[a] {
			before += p.netHPWL(perm, nid)
		}
		for _, nid := range p.netsOf[b] {
			before += p.netHPWL(perm, nid)
		}
		perm[a], perm[b] = perm[b], perm[a]
		var after float64
		for _, nid := range p.netsOf[a] {
			after += p.netHPWL(perm, nid)
		}
		for _, nid := range p.netsOf[b] {
			after += p.netHPWL(perm, nid)
		}
		if after > before {
			perm[a], perm[b] = perm[b], perm[a] // revert
		}
	}
	return perm
}

// Cost implements Problem: total HPWL.
func (p *PlacementProblem) Cost(s any) float64 {
	perm := s.(Perm)
	var total float64
	for i := range p.n.Nets {
		if p.n.Nets[i].IsClock {
			continue
		}
		total += p.netHPWL(perm, i)
	}
	return total
}

// Distance implements Problem: mean per-cell Manhattan distance.
func (p *PlacementProblem) Distance(a, b any) float64 {
	pa, pb := a.(Perm), b.(Perm)
	var d float64
	for cell := range pa {
		ax, ay := p.coords(pa, cell)
		bx, by := p.coords(pb, cell)
		d += math.Abs(ax-bx) + math.Abs(ay-by)
	}
	return d / float64(len(pa))
}

// Combine implements Problem: start from the best elite and pull a
// random subset of cells toward their slots in other elites via swaps.
func (p *PlacementProblem) Combine(elite []any, rng *rand.Rand) any {
	base := append(Perm(nil), elite[0].(Perm)...)
	if len(elite) == 1 {
		// Nothing to cross with: perturb lightly instead.
		for k := 0; k < len(base)/10+1; k++ {
			a, b := rng.Intn(len(base)), rng.Intn(len(base))
			base[a], base[b] = base[b], base[a]
		}
		return base
	}
	// slotOwner[slot] = cell occupying it in base.
	owner := make([]int, len(base))
	for cell, slot := range base {
		owner[slot] = cell
	}
	moves := len(base)/4 + 1
	for k := 0; k < moves; k++ {
		donor := elite[1+rng.Intn(len(elite)-1)].(Perm)
		cell := rng.Intn(len(base))
		want := donor[cell]
		cur := base[cell]
		if want == cur {
			continue
		}
		other := owner[want]
		base[cell], base[other] = want, cur
		owner[want], owner[cur] = cell, other
	}
	return base
}

// Apply writes a permutation's coordinates back to the netlist.
func (p *PlacementProblem) Apply(s any) {
	perm := s.(Perm)
	for cell, slot := range perm {
		p.n.Insts[cell].X = p.slotsX[slot]
		p.n.Insts[cell].Y = p.slotsY[slot]
	}
	p.n.InvalidatePlacement()
}
