package power

import (
	"math"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sta"
)

func placed(seed int64) *netlist.Netlist {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
	place.Place(n, place.Options{Seed: seed, Moves: 5000})
	return n
}

func TestAnalyzeBasics(t *testing.T) {
	n := placed(1)
	r := Analyze(n, Options{})
	if r.TotalLeakageNW <= 0 || r.TotalDynamicNW <= 0 {
		t.Fatalf("power components missing: %+v", r)
	}
	if math.Abs(r.TotalNW-(r.TotalDynamicNW+r.TotalLeakageNW)) > 1e-9 {
		t.Fatal("total power inconsistent")
	}
	if math.Abs(r.TotalLeakageNW-n.Leakage()) > 1e-6 {
		t.Fatalf("leakage %v != netlist %v", r.TotalLeakageNW, n.Leakage())
	}
	var density float64
	for _, d := range r.DensityNW {
		if d < 0 {
			t.Fatal("negative density")
		}
		density += d
	}
	if math.Abs(density-r.TotalNW) > 1e-6 {
		t.Fatalf("density map sums to %v, total %v", density, r.TotalNW)
	}
}

func TestDroopProperties(t *testing.T) {
	n := placed(2)
	r := Analyze(n, Options{})
	if len(r.DroopMV) != r.GridDim*r.GridDim {
		t.Fatal("droop map sized wrong")
	}
	var worst float64
	for _, d := range r.DroopMV {
		if d < 0 {
			t.Fatal("negative droop")
		}
		worst = math.Max(worst, d)
	}
	if worst != r.WorstDroopMV {
		t.Fatalf("worst droop %v != max %v", r.WorstDroopMV, worst)
	}
	if r.AvgDroopMV > r.WorstDroopMV {
		t.Fatal("avg above worst")
	}
	// Pads (boundary) have zero droop.
	dim := r.GridDim
	for x := 0; x < dim; x++ {
		if r.DroopMV[x] != 0 || r.DroopMV[(dim-1)*dim+x] != 0 {
			t.Fatal("boundary pad has droop")
		}
	}
}

func TestCenterDroopsMostOnUniformLoad(t *testing.T) {
	n := placed(3)
	r := Analyze(n, Options{})
	dim := r.GridDim
	center := r.DroopMV[(dim/2)*dim+dim/2]
	edgeAdj := r.DroopMV[1*dim+1]
	if center < edgeAdj {
		t.Errorf("center droop %v should exceed near-pad droop %v", center, edgeAdj)
	}
}

func TestMorePowerMoreDroop(t *testing.T) {
	n := placed(4)
	low := Analyze(n, Options{ClockFreqGHz: 0.2})
	high := Analyze(n, Options{ClockFreqGHz: 2.0})
	if high.TotalDynamicNW <= low.TotalDynamicNW {
		t.Fatal("dynamic power should scale with frequency")
	}
	if high.WorstDroopMV <= low.WorstDroopMV {
		t.Errorf("droop should grow with power: %v vs %v", high.WorstDroopMV, low.WorstDroopMV)
	}
}

func TestResistanceScalesDroop(t *testing.T) {
	n := placed(5)
	stiff := Analyze(n, Options{SegResistOhm: 0.1})
	weak := Analyze(n, Options{SegResistOhm: 2.0})
	if weak.WorstDroopMV <= stiff.WorstDroopMV {
		t.Errorf("weaker grid should droop more: %v vs %v", weak.WorstDroopMV, stiff.WorstDroopMV)
	}
}

func TestInstDroopAssigned(t *testing.T) {
	n := placed(6)
	r := Analyze(n, Options{})
	if len(r.InstDroopMV) != n.NumCells() {
		t.Fatal("per-instance droop missing")
	}
	for _, d := range r.InstDroopMV {
		if d < 0 || d > r.WorstDroopMV+1e-9 {
			t.Fatalf("instance droop %v out of range", d)
		}
	}
}

func TestTimingDerateMultiphysics(t *testing.T) {
	// The paper's multiphysics loop: droop -> per-instance derate ->
	// slower timing. WNS with the droop derate must not improve.
	n := placed(7)
	r := Analyze(n, Options{ClockFreqGHz: 3, ActivityFactor: 0.5})
	derate := r.TimingDerate(0.8)
	for _, m := range derate {
		if m < 1 {
			t.Fatalf("derate %v below 1", m)
		}
	}
	base := sta.Analyze(n, sta.Config{Engine: sta.Signoff})
	droopAware := sta.Analyze(n, sta.Config{Engine: sta.Signoff, InstDerate: derate})
	if droopAware.WNSPs > base.WNSPs {
		t.Errorf("droop-aware WNS %v better than nominal %v", droopAware.WNSPs, base.WNSPs)
	}
}

func TestDeterministic(t *testing.T) {
	n := placed(8)
	a := Analyze(n, Options{})
	b := Analyze(n, Options{})
	if a.WorstDroopMV != b.WorstDroopMV || a.TotalNW != b.TotalNW {
		t.Fatal("analysis not deterministic")
	}
}

func BenchmarkAnalyzePower(b *testing.B) {
	n := placed(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(n, Options{})
	}
}
