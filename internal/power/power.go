// Package power implements power analysis and IR-drop (voltage droop)
// estimation over the placed design: per-instance dynamic and leakage
// power, a power-density map, and an iteratively solved power-grid droop
// map.
//
// The paper's Sec. 3.2 lists IR-drop analysis among the miscorrelated
// analyses, and its "multiphysics" example couples voltage droop with
// timing ("the loop ... involving temperature and voltage droop in
// combination with signal integrity-aware timing", refs [7][19]). The
// droop map produced here feeds a per-instance timing derate, closing
// that loop mechanistically.
package power

import (
	"math"

	"repro/internal/netlist"
)

// Options parameterize the analysis.
type Options struct {
	GridDim        int     // power-grid nodes per side (default 16)
	SupplyV        float64 // nominal supply (default 0.8 V)
	ClockFreqGHz   float64 // switching frequency (default 0.5)
	ActivityFactor float64 // average switching activity (default 0.15)
	// SegResistOhm is the resistance of one grid segment (default 0.5).
	SegResistOhm float64
	// Solver sweeps for the droop relaxation (default 400).
	Sweeps int
}

func (o Options) withDefaults() Options {
	if o.GridDim <= 0 {
		o.GridDim = 16
	}
	if o.SupplyV <= 0 {
		o.SupplyV = 0.8
	}
	if o.ClockFreqGHz <= 0 {
		o.ClockFreqGHz = 0.5
	}
	if o.ActivityFactor <= 0 {
		o.ActivityFactor = 0.15
	}
	if o.SegResistOhm <= 0 {
		o.SegResistOhm = 0.5
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 400
	}
	return o
}

// Result is the power and droop picture.
type Result struct {
	GridDim int

	TotalDynamicNW float64
	TotalLeakageNW float64
	TotalNW        float64

	// DensityNW[y*GridDim+x] is power drawn in each grid cell, nW.
	DensityNW []float64
	// DroopMV[y*GridDim+x] is the voltage droop at each grid node, mV.
	DroopMV []float64

	WorstDroopMV float64
	AvgDroopMV   float64

	// InstDroopMV[inst] is the droop seen by each instance, mV.
	InstDroopMV []float64
}

// Analyze computes power and solves the IR-drop grid for the placed
// netlist.
func Analyze(n *netlist.Netlist, opts Options) *Result {
	opts = opts.withDefaults()
	dim := opts.GridDim
	res := &Result{
		GridDim:     dim,
		DensityNW:   make([]float64, dim*dim),
		DroopMV:     make([]float64, dim*dim),
		InstDroopMV: make([]float64, n.NumCells()),
	}

	// Die extent for binning.
	var maxX, maxY float64
	for i := range n.Insts {
		maxX = math.Max(maxX, n.Insts[i].X)
		maxY = math.Max(maxY, n.Insts[i].Y)
	}
	if maxX <= 0 {
		maxX = 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	cellBin := make([]int, n.NumCells())
	binOf := func(x, y float64) int {
		gx := clamp(int(x/(maxX*1.0001)*float64(dim)), 0, dim-1)
		gy := clamp(int(y/(maxY*1.0001)*float64(dim)), 0, dim-1)
		return gy*dim + gx
	}

	// Per-instance power: leakage from the cell, dynamic from switched
	// output load (0.5 * C * V^2 * f * alpha).
	fHz := opts.ClockFreqGHz * 1e9
	for i := range n.Insts {
		inst := &n.Insts[i]
		leak := inst.Cell.Leakage
		var dyn float64
		if out := n.FanoutNet[i]; out >= 0 {
			loadF := n.NetLoad(out) * 1e-15 // fF -> F
			// Watts -> nW.
			dyn = 0.5 * loadF * opts.SupplyV * opts.SupplyV * fHz * opts.ActivityFactor * 1e9
		}
		res.TotalLeakageNW += leak
		res.TotalDynamicNW += dyn
		b := binOf(inst.X, inst.Y)
		cellBin[i] = b
		res.DensityNW[b] += leak + dyn
	}
	res.TotalNW = res.TotalDynamicNW + res.TotalLeakageNW

	// IR-drop: Gauss-Seidel relaxation of the grid Laplacian. Boundary
	// nodes are supply pads pinned at Vdd; each interior node draws
	// I = P/Vdd.
	v := make([]float64, dim*dim)
	for i := range v {
		v[i] = opts.SupplyV
	}
	isPad := func(x, y int) bool {
		return x == 0 || y == 0 || x == dim-1 || y == dim-1
	}
	g := 1 / opts.SegResistOhm
	for sweep := 0; sweep < opts.Sweeps; sweep++ {
		for y := 0; y < dim; y++ {
			for x := 0; x < dim; x++ {
				if isPad(x, y) {
					continue
				}
				idx := y*dim + x
				// nW / V -> nA; with g in siemens the voltage terms
				// need consistent units: convert drawn current to A.
				currentA := res.DensityNW[idx] * 1e-9 / opts.SupplyV
				var sumV float64
				neighbors := 0
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := x+d[0], y+d[1]
					if nx < 0 || ny < 0 || nx >= dim || ny >= dim {
						continue
					}
					sumV += v[ny*dim+nx]
					neighbors++
				}
				v[idx] = (sumV*g - currentA) / (float64(neighbors) * g)
			}
		}
	}
	var sumDroop float64
	for i := range v {
		droop := (opts.SupplyV - v[i]) * 1000 // mV
		if droop < 0 {
			droop = 0
		}
		res.DroopMV[i] = droop
		sumDroop += droop
		if droop > res.WorstDroopMV {
			res.WorstDroopMV = droop
		}
	}
	res.AvgDroopMV = sumDroop / float64(len(v))
	for i := range n.Insts {
		res.InstDroopMV[i] = res.DroopMV[cellBin[i]]
	}
	return res
}

// TimingDerate converts the droop map into per-instance delay
// multipliers: a cell at reduced supply switches slower, first-order
// ~2x relative delay increase per relative supply loss.
func (r *Result) TimingDerate(supplyV float64) []float64 {
	if supplyV <= 0 {
		supplyV = 0.8
	}
	out := make([]float64, len(r.InstDroopMV))
	for i, droop := range r.InstDroopMV {
		out[i] = 1 + 2*(droop/1000)/supplyV
	}
	return out
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
