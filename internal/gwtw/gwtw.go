// Package gwtw implements the Go-With-The-Winners strategy of the
// paper's Fig. 6(a) (Aldous-Vazirani [2], applied to gate sizing in ref
// [24]): N optimization threads run concurrently; periodically the most
// promising threads are cloned while the least promising are terminated,
// keeping the population size constant and concentrating compute on good
// trajectories.
package gwtw

import (
	"math/rand"
	"sort"
)

// Optimizer is one restartable local-search thread. Implementations are
// provided by internal/sizing (gate sizing) and internal/multistart's
// placement adapter; a test double lives in this package's tests.
type Optimizer interface {
	// Step performs one local-search move.
	Step(rng *rand.Rand)
	// Cost returns the current solution cost (lower is better).
	Cost() float64
	// Clone returns an independent deep copy of the thread.
	Clone() Optimizer
}

// Config parameterizes a GWTW run.
type Config struct {
	Population    int // N concurrent threads (default 8)
	Rounds        int // resampling rounds (default 10)
	StepsPerRound int // local-search steps between resamplings (default 50)
	// KeepFrac is the fraction of threads kept as winners each round;
	// the rest are replaced by clones of winners (default 0.5).
	KeepFrac float64
	Seed     int64
}

func (c Config) withDefaults() Config {
	if c.Population <= 0 {
		c.Population = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.StepsPerRound <= 0 {
		c.StepsPerRound = 50
	}
	if c.KeepFrac <= 0 || c.KeepFrac > 1 {
		c.KeepFrac = 0.5
	}
	return c
}

// Result summarizes a run.
type Result struct {
	BestCost float64
	Best     Optimizer
	// Trace[r] holds the population costs after round r (sorted
	// ascending) — the thread picture of Fig. 6(a).
	Trace      [][]float64
	TotalSteps int
	Clones     int
}

// Run executes GWTW. newThread(i) must create the i-th initial thread
// (typically identical problems with different random starts).
func Run(newThread func(i int) Optimizer, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := make([]Optimizer, cfg.Population)
	for i := range pop {
		pop[i] = newThread(i)
	}
	res := &Result{}
	for round := 0; round < cfg.Rounds; round++ {
		for _, th := range pop {
			for s := 0; s < cfg.StepsPerRound; s++ {
				th.Step(rng)
				res.TotalSteps++
			}
		}
		// Rank by cost.
		sort.Slice(pop, func(i, j int) bool { return pop[i].Cost() < pop[j].Cost() })
		costs := make([]float64, len(pop))
		for i, th := range pop {
			costs[i] = th.Cost()
		}
		res.Trace = append(res.Trace, costs)
		// Resample: keep the winners, replace losers with clones of
		// winners chosen uniformly (the "clone the most promising
		// thread while terminating other threads" step).
		if round < cfg.Rounds-1 {
			keep := int(float64(len(pop)) * cfg.KeepFrac)
			if keep < 1 {
				keep = 1
			}
			for i := keep; i < len(pop); i++ {
				pop[i] = pop[rng.Intn(keep)].Clone()
				res.Clones++
			}
		}
	}
	best := pop[0]
	for _, th := range pop[1:] {
		if th.Cost() < best.Cost() {
			best = th
		}
	}
	res.Best = best
	res.BestCost = best.Cost()
	return res
}

// RunIndependent is the multistart baseline at the same budget: the same
// number of threads and steps but no resampling. Used by the Fig. 6(a)
// bench to show GWTW's advantage at equal compute.
func RunIndependent(newThread func(i int) Optimizer, cfg Config) *Result {
	cfg = cfg.withDefaults()
	cfg.KeepFrac = 1 // no-op resampling
	return Run(newThread, cfg)
}
