package gwtw

import (
	"math"
	"math/rand"
	"testing"
)

// rugged is a deceptive 1-D landscape: many local minima, global minimum
// at x=7. Threads do hill-descending with occasional uphill tolerance.
type rugged struct {
	x    float64
	temp float64
}

func (r *rugged) cost(x float64) float64 {
	return (x-7)*(x-7) + 4*math.Sin(3*x)*math.Sin(3*x)
}

func (r *rugged) Step(rng *rand.Rand) {
	nx := r.x + rng.NormFloat64()*0.5
	if r.cost(nx) < r.cost(r.x) || rng.Float64() < r.temp {
		r.x = nx
	}
	r.temp *= 0.995
}

func (r *rugged) Cost() float64 { return r.cost(r.x) }

func (r *rugged) Clone() Optimizer {
	c := *r
	return &c
}

func newRugged(i int) Optimizer {
	rng := rand.New(rand.NewSource(int64(i)))
	return &rugged{x: rng.Float64()*20 - 10, temp: 0.3}
}

func TestGWTWImproves(t *testing.T) {
	res := Run(newRugged, Config{Population: 10, Rounds: 12, StepsPerRound: 40, Seed: 1})
	if res.BestCost > 2 {
		t.Errorf("best cost %v, want near 0", res.BestCost)
	}
	if res.TotalSteps != 10*12*40 {
		t.Errorf("steps %d", res.TotalSteps)
	}
	if res.Clones == 0 {
		t.Error("no clones made")
	}
	if len(res.Trace) != 12 {
		t.Errorf("trace rounds %d", len(res.Trace))
	}
}

func TestTraceSortedAndImproving(t *testing.T) {
	res := Run(newRugged, Config{Population: 8, Rounds: 10, StepsPerRound: 30, Seed: 2})
	for r, costs := range res.Trace {
		for i := 1; i < len(costs); i++ {
			if costs[i] < costs[i-1] {
				t.Fatalf("round %d costs not sorted", r)
			}
		}
	}
	first := res.Trace[0][0]
	last := res.Trace[len(res.Trace)-1][0]
	if last > first {
		t.Errorf("best-of-population should not regress: %v -> %v", first, last)
	}
}

func TestGWTWBeatsIndependentOnAverage(t *testing.T) {
	// At equal budget, concentrating compute on winners should do at
	// least as well on a deceptive landscape, averaged over seeds.
	var g, ind float64
	for seed := int64(0); seed < 10; seed++ {
		cfg := Config{Population: 10, Rounds: 10, StepsPerRound: 25, Seed: seed}
		g += Run(newRugged, cfg).BestCost
		ind += RunIndependent(newRugged, cfg).BestCost
	}
	if g > ind+0.5 {
		t.Errorf("GWTW average %v clearly worse than independent %v", g/10, ind/10)
	}
}

func TestIndependentDoesNotClone(t *testing.T) {
	res := RunIndependent(newRugged, Config{Population: 6, Rounds: 5, StepsPerRound: 10, Seed: 3})
	if res.Clones != 0 {
		t.Errorf("independent run cloned %d threads", res.Clones)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := Config{Population: 6, Rounds: 6, StepsPerRound: 20, Seed: 9}
	a := Run(newRugged, cfg)
	b := Run(newRugged, cfg)
	if a.BestCost != b.BestCost {
		t.Error("same seed differs")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Population != 8 || cfg.Rounds != 10 || cfg.StepsPerRound != 50 || cfg.KeepFrac != 0.5 {
		t.Errorf("defaults %+v", cfg)
	}
}

func TestSingleThreadPopulation(t *testing.T) {
	res := Run(newRugged, Config{Population: 1, Rounds: 3, StepsPerRound: 10, Seed: 4})
	if res.Best == nil {
		t.Fatal("no best returned")
	}
}
