package num

import (
	"math/rand"
	"testing"
)

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %d", got)
	}
	if got := Clamp(-2, 0, 3); got != 0 {
		t.Errorf("Clamp(-2,0,3) = %d", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp(2,0,3) = %d", got)
	}
	if got := Clamp(1.5, 0.0, 1.0); got != 1.0 {
		t.Errorf("Clamp(1.5,0,1) = %v", got)
	}
}

func TestMixDecorrelatesStreams(t *testing.T) {
	seen := map[int64]uint64{}
	for stream := uint64(0); stream < 1000; stream++ {
		v := Mix(42, stream)
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide", prev, stream)
		}
		seen[v] = stream
	}
	if Mix(1, 0) == Mix(2, 0) {
		t.Error("different seeds should give different streams")
	}
	if Mix(1, 0) != Mix(1, 0) {
		t.Error("Mix must be deterministic")
	}
}

var _ rand.Source64 = (*SplitMix)(nil)

func TestSplitMixDeterministicStream(t *testing.T) {
	a, b := rand.New(NewSplitMix(99)), rand.New(NewSplitMix(99))
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed streams diverge at draw %d", i)
		}
	}
	c := rand.New(NewSplitMix(100))
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent-seed streams agree on %d of 100 draws", same)
	}
	// Coin flips should be roughly balanced — splitmix64 is a proper
	// mixer, not a counter.
	s, heads := NewSplitMix(7), 0
	for i := 0; i < 10000; i++ {
		if s.Uint64()&1 == 1 {
			heads++
		}
	}
	if heads < 4500 || heads > 5500 {
		t.Errorf("low bit badly biased: %d/10000 heads", heads)
	}
}
