// Package num holds the tiny numeric helpers shared by the
// physical-design kernels. Before it existed, clamp/min/max were
// re-implemented per file in internal/place, internal/route and
// internal/power; min and max themselves are Go builtins since 1.21, so
// only the compositions live here.
package num

import "cmp"

// Clamp limits x to [lo, hi]. lo must not exceed hi.
func Clamp[T cmp.Ordered](x, lo, hi T) T {
	return min(max(x, lo), hi)
}

// Mix derives a decorrelated child seed from a parent seed and a stream
// index (one splitmix64 step — the same construction flow.subSeed uses
// for per-stage seeds). The parallel kernels use it for per-tile and
// per-phase rng streams: Seed identifies the run, stream the shard, and
// the result never collides across neighbouring streams the way
// seed+stream arithmetic does.
func Mix(seed int64, stream uint64) int64 {
	z := uint64(seed) + (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SplitMix is a splitmix64 rand.Source64. Unlike rand.NewSource —
// whose additive-lagged-Fibonacci state costs a 607-word initialisation
// per source — a SplitMix is two words and free to construct, which
// matters when a kernel seeds one independent stream per net or per
// move. The sequence is a pure function of the seed on every platform.
type SplitMix struct{ state uint64 }

// NewSplitMix returns a source whose stream is determined by seed.
func NewSplitMix(seed int64) *SplitMix { return &SplitMix{state: uint64(seed)} }

// Uint64 advances the state by the golden-gamma and mixes it (the
// same finalizer Mix uses).
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 satisfies rand.Source.
func (s *SplitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed satisfies rand.Source.
func (s *SplitMix) Seed(seed int64) { s.state = uint64(seed) }
