// Package schedule implements project-level design-resource scheduling:
// allocating a fixed engineer pool across concurrent chip projects with
// deadlines. The paper's footnote 4 (ref [1]) notes that "project- and
// enterprise-level schedule and resource optimizations, supported by
// accurate estimates, have the potential to achieve substantial design
// cost reductions"; this package quantifies that by comparing allocation
// policies on the same project portfolio.
package schedule

import (
	"fmt"
	"sort"
)

// Project is one chip/tapeout effort.
type Project struct {
	Name    string
	Release int     // month the project becomes available
	Due     int     // deadline month
	WorkEM  float64 // total work, engineer-months
	// MaxParallel caps how many engineers can usefully work at once
	// (communication overhead; default 8).
	MaxParallel int
	// PenaltyPerMonth is the cost of missing the deadline, $ per month
	// (a slipped tapeout is expensive; default 1e6).
	PenaltyPerMonth float64
}

func (p Project) withDefaults() Project {
	if p.MaxParallel <= 0 {
		p.MaxParallel = 8
	}
	if p.PenaltyPerMonth <= 0 {
		p.PenaltyPerMonth = 1e6
	}
	return p
}

// status tracks a project during simulation.
type status struct {
	Project
	remaining float64
	done      bool
	finish    int
}

// Allocation maps project index -> engineers assigned this month.
type Allocation map[int]int

// Policy decides the per-month engineer allocation. Implementations
// receive the active (released, unfinished) project indices, a view of
// their state, and the pool size.
type Policy interface {
	Name() string
	Allocate(month int, active []int, projects []status, engineers int) Allocation
}

// capAlloc clamps an allocation to MaxParallel and the pool, dropping
// excess deterministically.
func capAlloc(alloc Allocation, active []int, projects []status, engineers int) Allocation {
	out := Allocation{}
	used := 0
	for _, pi := range active {
		want := alloc[pi]
		if want <= 0 {
			continue
		}
		if want > projects[pi].MaxParallel {
			want = projects[pi].MaxParallel
		}
		if used+want > engineers {
			want = engineers - used
		}
		if want <= 0 {
			continue
		}
		out[pi] = want
		used += want
	}
	return out
}

// FIFO assigns the whole pool to projects in release order.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Allocate implements Policy.
func (FIFO) Allocate(month int, active []int, projects []status, engineers int) Allocation {
	order := append([]int(nil), active...)
	sort.Slice(order, func(i, j int) bool { return projects[order[i]].Release < projects[order[j]].Release })
	alloc := Allocation{}
	left := engineers
	for _, pi := range order {
		take := projects[pi].MaxParallel
		if take > left {
			take = left
		}
		alloc[pi] = take
		left -= take
		if left == 0 {
			break
		}
	}
	return capAlloc(alloc, active, projects, engineers)
}

// EDD assigns the pool by earliest due date.
type EDD struct{}

// Name implements Policy.
func (EDD) Name() string { return "edd" }

// Allocate implements Policy.
func (EDD) Allocate(month int, active []int, projects []status, engineers int) Allocation {
	order := append([]int(nil), active...)
	sort.Slice(order, func(i, j int) bool { return projects[order[i]].Due < projects[order[j]].Due })
	alloc := Allocation{}
	left := engineers
	for _, pi := range order {
		take := projects[pi].MaxParallel
		if take > left {
			take = left
		}
		alloc[pi] = take
		left -= take
		if left == 0 {
			break
		}
	}
	return capAlloc(alloc, active, projects, engineers)
}

// CriticalRatio allocates proportionally to urgency: remaining work over
// remaining time (projects already late get top priority).
type CriticalRatio struct{}

// Name implements Policy.
func (CriticalRatio) Name() string { return "critical-ratio" }

// Allocate implements Policy.
func (CriticalRatio) Allocate(month int, active []int, projects []status, engineers int) Allocation {
	type scored struct {
		pi      int
		urgency float64
	}
	var order []scored
	for _, pi := range active {
		p := projects[pi]
		slackMonths := float64(p.Due - month)
		urgency := p.remaining * 10
		if slackMonths > 0 {
			urgency = p.remaining / slackMonths
		}
		order = append(order, scored{pi: pi, urgency: urgency})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].urgency != order[j].urgency {
			return order[i].urgency > order[j].urgency
		}
		return order[i].pi < order[j].pi
	})
	alloc := Allocation{}
	left := engineers
	for _, s := range order {
		// Assign the minimum of: what finishes the project this
		// month, the parallelism cap, and what's left.
		need := int(projects[s.pi].remaining + 0.999)
		take := need
		if take > projects[s.pi].MaxParallel {
			take = projects[s.pi].MaxParallel
		}
		if take > left {
			take = left
		}
		if take > 0 {
			alloc[s.pi] = take
			left -= take
		}
		if left == 0 {
			break
		}
	}
	return capAlloc(alloc, active, projects, engineers)
}

// Outcome is the simulated portfolio result under one policy.
type Outcome struct {
	Policy          string
	MonthsSimulated int
	TotalLateness   int     // project-months past deadlines
	PenaltyUSD      float64 // lateness cost
	SalaryUSD       float64 // engineer-months consumed * salary
	TotalUSD        float64
	Utilization     float64 // fraction of pool-months used
	Finish          map[string]int
	LateProjects    int
}

// Simulate runs the monthly allocation loop until all projects finish
// (or 10x the latest deadline, a runaway guard). Salary is $20k per
// engineer-month.
func Simulate(projects []Project, engineers int, policy Policy) (Outcome, error) {
	if engineers <= 0 {
		return Outcome{}, fmt.Errorf("schedule: no engineers")
	}
	if len(projects) == 0 {
		return Outcome{}, fmt.Errorf("schedule: no projects")
	}
	const salaryPerEM = 20_000
	states := make([]status, len(projects))
	maxDue := 0
	for i, p := range projects {
		p = p.withDefaults()
		states[i] = status{Project: p, remaining: p.WorkEM}
		if p.Due > maxDue {
			maxDue = p.Due
		}
	}
	guard := 10*maxDue + 120
	out := Outcome{Policy: policy.Name(), Finish: map[string]int{}}
	var usedEM float64
	month := 0
	for ; month < guard; month++ {
		var active []int
		for i := range states {
			if !states[i].done && states[i].Release <= month {
				active = append(active, i)
			}
		}
		allDone := true
		for i := range states {
			if !states[i].done {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if len(active) == 0 {
			continue
		}
		alloc := capAlloc(policy.Allocate(month, active, states, engineers), active, states, engineers)
		for pi, eng := range alloc {
			// Charge only the work actually consumed: a project in
			// its final month frees its surplus engineers (so salary
			// accounting is work-conserving across policies).
			consume := float64(eng)
			if consume > states[pi].remaining {
				consume = states[pi].remaining
			}
			states[pi].remaining -= consume
			usedEM += consume
			if states[pi].remaining <= 1e-9 && !states[pi].done {
				states[pi].done = true
				states[pi].finish = month + 1
			}
		}
	}
	out.MonthsSimulated = month
	for i := range states {
		if !states[i].done {
			return out, fmt.Errorf("schedule: project %s never finished (policy %s)", states[i].Name, policy.Name())
		}
		out.Finish[states[i].Name] = states[i].finish
		if late := states[i].finish - states[i].Due; late > 0 {
			out.TotalLateness += late
			out.PenaltyUSD += float64(late) * states[i].PenaltyPerMonth
			out.LateProjects++
		}
	}
	out.SalaryUSD = usedEM * salaryPerEM
	out.TotalUSD = out.SalaryUSD + out.PenaltyUSD
	if month > 0 {
		out.Utilization = usedEM / float64(month*engineers)
	}
	return out, nil
}

// Compare runs all policies on the portfolio and returns outcomes sorted
// by total cost (best first).
func Compare(projects []Project, engineers int) ([]Outcome, error) {
	var outs []Outcome
	for _, pol := range []Policy{FIFO{}, EDD{}, CriticalRatio{}} {
		o, err := Simulate(projects, engineers, pol)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].TotalUSD < outs[j].TotalUSD })
	return outs, nil
}
