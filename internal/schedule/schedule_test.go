package schedule

import "testing"

// portfolio: staggered due dates that punish FIFO (the early-released
// project has a late deadline; the late-released one is urgent).
func portfolio() []Project {
	return []Project{
		{Name: "soc-a", Release: 0, Due: 24, WorkEM: 60, MaxParallel: 6},
		{Name: "soc-b", Release: 2, Due: 8, WorkEM: 30, MaxParallel: 8},
		{Name: "ip-c", Release: 4, Due: 10, WorkEM: 20, MaxParallel: 4},
		{Name: "deriv-d", Release: 6, Due: 14, WorkEM: 24, MaxParallel: 6},
	}
}

func TestSimulateCompletesAll(t *testing.T) {
	out, err := Simulate(portfolio(), 10, EDD{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Finish) != 4 {
		t.Fatalf("finished %d projects", len(out.Finish))
	}
	for name, m := range out.Finish {
		if m <= 0 {
			t.Errorf("%s finish month %d", name, m)
		}
	}
	if out.Utilization <= 0 || out.Utilization > 1 {
		t.Errorf("utilization %v", out.Utilization)
	}
	if out.SalaryUSD <= 0 {
		t.Error("no salary cost")
	}
}

func TestDeadlineAwarePoliciesBeatFIFO(t *testing.T) {
	fifo, err := Simulate(portfolio(), 10, FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	edd, err := Simulate(portfolio(), 10, EDD{})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Simulate(portfolio(), 10, CriticalRatio{})
	if err != nil {
		t.Fatal(err)
	}
	if edd.PenaltyUSD >= fifo.PenaltyUSD {
		t.Errorf("EDD penalty %v should beat FIFO %v", edd.PenaltyUSD, fifo.PenaltyUSD)
	}
	if cr.PenaltyUSD > fifo.PenaltyUSD {
		t.Errorf("critical-ratio penalty %v should not exceed FIFO %v", cr.PenaltyUSD, fifo.PenaltyUSD)
	}
	// The salary cost is work-conserving (same total work), so total
	// cost differences come from lateness.
	if edd.SalaryUSD != fifo.SalaryUSD {
		t.Errorf("salary should be policy-independent: %v vs %v", edd.SalaryUSD, fifo.SalaryUSD)
	}
}

func TestCompareSorted(t *testing.T) {
	outs, err := Compare(portfolio(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("%d outcomes", len(outs))
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].TotalUSD < outs[i-1].TotalUSD {
			t.Fatal("outcomes not sorted by cost")
		}
	}
}

func TestAmpleResourcesNoLateness(t *testing.T) {
	out, err := Simulate(portfolio(), 100, FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalLateness != 0 {
		t.Errorf("with a huge pool nothing should be late: %d project-months", out.TotalLateness)
	}
}

func TestMaxParallelLimitsSpeed(t *testing.T) {
	// One project, cap 2, work 10 EM: needs >= 5 months regardless of
	// pool size.
	out, err := Simulate([]Project{{Name: "x", Due: 3, WorkEM: 10, MaxParallel: 2}}, 50, EDD{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Finish["x"] < 5 {
		t.Errorf("finished in %d months despite parallelism cap", out.Finish["x"])
	}
	if out.TotalLateness == 0 {
		t.Error("cap should make the 3-month deadline impossible")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, 5, FIFO{}); err == nil {
		t.Error("empty portfolio should error")
	}
	if _, err := Simulate(portfolio(), 0, FIFO{}); err == nil {
		t.Error("no engineers should error")
	}
}

func TestReleaseRespected(t *testing.T) {
	out, err := Simulate([]Project{{Name: "late-start", Release: 12, Due: 20, WorkEM: 4, MaxParallel: 4}}, 8, EDD{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Finish["late-start"] <= 12 {
		t.Errorf("project finished at %d before its release month", out.Finish["late-start"])
	}
}
