// Package mdp implements finite Markov decision processes (value and
// policy iteration) and the paper's doomed-run application: an MDP-based
// "blackjack strategy card" over binned DRV counts and their change,
// derived from detailed-router logfiles (Sec. 3.3, Figs. 9-10, and the
// consecutive-STOP error table).
package mdp

import (
	"fmt"
	"math"
)

// Transition is one outcome of taking an action in a state.
type Transition struct {
	To   int
	Prob float64
}

// MDP is a finite Markov decision process. Terminal states yield no
// further reward regardless of action.
type MDP struct {
	NumStates  int
	NumActions int
	// Trans[s][a] lists the outcome distribution of action a in state
	// s. Probabilities should sum to 1 per (s,a) with transitions.
	Trans [][][]Transition
	// Reward[s][a] is the expected immediate reward of action a in s.
	Reward [][]float64
	// Terminal marks absorbing states.
	Terminal []bool
	// Gamma is the discount factor in (0,1].
	Gamma float64
}

// New allocates an MDP with the given dimensions and discount.
func New(states, actions int, gamma float64) *MDP {
	m := &MDP{
		NumStates:  states,
		NumActions: actions,
		Trans:      make([][][]Transition, states),
		Reward:     make([][]float64, states),
		Terminal:   make([]bool, states),
		Gamma:      gamma,
	}
	for s := 0; s < states; s++ {
		m.Trans[s] = make([][]Transition, actions)
		m.Reward[s] = make([]float64, actions)
	}
	return m
}

// Validate checks distributions sum to ~1 and indices are in range.
func (m *MDP) Validate() error {
	for s := 0; s < m.NumStates; s++ {
		if m.Terminal[s] {
			continue
		}
		for a := 0; a < m.NumActions; a++ {
			ts := m.Trans[s][a]
			if len(ts) == 0 {
				continue // action unavailable: treated as terminal no-op
			}
			var sum float64
			for _, tr := range ts {
				if tr.To < 0 || tr.To >= m.NumStates {
					return fmt.Errorf("mdp: state %d action %d transitions to %d of %d", s, a, tr.To, m.NumStates)
				}
				if tr.Prob < 0 {
					return fmt.Errorf("mdp: negative probability at (%d,%d)", s, a)
				}
				sum += tr.Prob
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("mdp: transition probabilities at (%d,%d) sum to %v", s, a, sum)
			}
		}
	}
	return nil
}

// qValue computes Q(s,a) under values v.
func (m *MDP) qValue(s, a int, v []float64) float64 {
	q := m.Reward[s][a]
	for _, tr := range m.Trans[s][a] {
		q += m.Gamma * tr.Prob * v[tr.To]
	}
	return q
}

// ValueIteration computes the optimal value function and a greedy policy
// to tolerance tol (sup-norm) or maxIter sweeps.
func (m *MDP) ValueIteration(tol float64, maxIter int) (values []float64, policy []int) {
	if maxIter <= 0 {
		maxIter = 1000
	}
	v := make([]float64, m.NumStates)
	for iter := 0; iter < maxIter; iter++ {
		var delta float64
		for s := 0; s < m.NumStates; s++ {
			if m.Terminal[s] {
				continue
			}
			best := math.Inf(-1)
			for a := 0; a < m.NumActions; a++ {
				if q := m.qValue(s, a, v); q > best {
					best = q
				}
			}
			if math.IsInf(best, -1) {
				continue
			}
			delta = math.Max(delta, math.Abs(best-v[s]))
			v[s] = best
		}
		if delta < tol {
			break
		}
	}
	return v, m.greedy(v)
}

// PolicyIteration computes the optimal policy by alternating policy
// evaluation and greedy improvement — the solver the paper names for the
// strategy card ("policy iteration in Markov decision processes [4]").
func (m *MDP) PolicyIteration(maxIter int) (values []float64, policy []int) {
	if maxIter <= 0 {
		maxIter = 100
	}
	policy = make([]int, m.NumStates)
	v := make([]float64, m.NumStates)
	for iter := 0; iter < maxIter; iter++ {
		// Evaluate the current policy with iterative sweeps.
		for sweep := 0; sweep < 200; sweep++ {
			var delta float64
			for s := 0; s < m.NumStates; s++ {
				if m.Terminal[s] {
					continue
				}
				q := m.qValue(s, policy[s], v)
				delta = math.Max(delta, math.Abs(q-v[s]))
				v[s] = q
			}
			if delta < 1e-9 {
				break
			}
		}
		// Improve.
		next := m.greedy(v)
		stable := true
		for s := range next {
			if next[s] != policy[s] {
				stable = false
			}
		}
		policy = next
		if stable {
			break
		}
	}
	return v, policy
}

// greedy returns the argmax-Q policy for the given values.
func (m *MDP) greedy(v []float64) []int {
	policy := make([]int, m.NumStates)
	for s := 0; s < m.NumStates; s++ {
		if m.Terminal[s] {
			continue
		}
		best, bestQ := 0, math.Inf(-1)
		for a := 0; a < m.NumActions; a++ {
			if q := m.qValue(s, a, v); q > bestQ {
				best, bestQ = a, q
			}
		}
		policy[s] = best
	}
	return policy
}
