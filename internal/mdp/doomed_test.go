package mdp

import (
	"strings"
	"testing"

	"repro/internal/logfile"
)

// syntheticRun builds a Run with the given multiplicative DRV trajectory.
func syntheticRun(id int, start float64, ratio float64, iters int, floor float64) logfile.Run {
	drvs := []int{int(start)}
	v := start
	for t := 0; t < iters; t++ {
		v = floor + (v-floor)*ratio
		drvs = append(drvs, int(v))
	}
	final := drvs[len(drvs)-1]
	return logfile.Run{ID: id, Design: "synt", Corpus: "synt", DRVs: drvs, Final: final, Success: final < 200}
}

// syntheticCorpus mixes clean decays (success) and plateaus (doomed).
func syntheticCorpus(n int) []logfile.Run {
	var runs []logfile.Run
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0, 1: // success: decay to ~0
			runs = append(runs, syntheticRun(i, 3000+float64(i%7)*500, 0.55, 20, 0))
		case 2: // doomed: high plateau
			runs = append(runs, syntheticRun(i, 20000+float64(i%5)*3000, 0.8, 20, 8000))
		default: // doomed: moderate plateau
			runs = append(runs, syntheticRun(i, 6000, 0.7, 20, 1500))
		}
	}
	return runs
}

func TestBuildCardShape(t *testing.T) {
	card := BuildCard(syntheticCorpus(200), CardConfig{})
	cfg := card.Config
	// STOP when DRVs are very large (right half of the card, paper's
	// reading of Fig. 10) with flat slope.
	if card.Action[cfg.ViolBins-1][cfg.deltaIndex(0)] != STOP {
		t.Error("very large flat DRVs should STOP")
	}
	// GO when DRVs are small.
	if card.Action[1][cfg.deltaIndex(0)] != GO {
		t.Error("small DRVs should GO")
	}
	// GO for moderately large DRVs with negative slope (bins 3-5
	// observation in the paper).
	if card.Action[4][cfg.deltaIndex(-2)] != GO {
		t.Error("moderate DRVs with negative slope should GO")
	}
}

func TestCardEvaluationErrorsFallWithConsecutiveStops(t *testing.T) {
	train := syntheticCorpus(300)
	test := syntheticCorpus(500)
	card := BuildCard(train, CardConfig{})
	var prev float64 = 101
	for _, k := range []int{1, 2, 3} {
		res := card.Evaluate(test, k)
		if res.Runs != 500 {
			t.Fatalf("evaluated %d runs", res.Runs)
		}
		if res.TotalErrorPct > prev+5 {
			t.Errorf("error at k=%d (%v%%) much worse than k-1 (%v%%)", k, res.TotalErrorPct, prev)
		}
		prev = res.TotalErrorPct
	}
	// With 3 consecutive STOPs the policy should be reasonably accurate
	// on this clean synthetic corpus.
	res3 := card.Evaluate(test, 3)
	if res3.TotalErrorPct > 25 {
		t.Errorf("k=3 error %v%% too high", res3.TotalErrorPct)
	}
	if res3.IterationsSaved <= 0 {
		t.Error("doomed runs should save iterations")
	}
	if res3.IterationsSaved > res3.IterationsTotal {
		t.Error("saved more iterations than exist")
	}
}

func TestOutcomeConsecutiveStopsStricter(t *testing.T) {
	card := BuildCard(syntheticCorpus(200), CardConfig{})
	doomed := syntheticRun(0, 30000, 0.85, 20, 9000)
	at1 := card.Outcome(doomed, 1)
	at3 := card.Outcome(doomed, 3)
	if at1 < 0 {
		t.Skip("policy never stops this run")
	}
	if at3 >= 0 && at3 < at1 {
		t.Errorf("k=3 stopped earlier (%d) than k=1 (%d)", at3, at1)
	}
}

func TestCardStringRenders(t *testing.T) {
	card := BuildCard(syntheticCorpus(100), CardConfig{})
	s := card.String()
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	if len(lines) != 2*card.Config.DeltaSpan+1 {
		t.Fatalf("card render has %d rows", len(lines))
	}
	for _, l := range lines {
		if len(l) != card.Config.ViolBins {
			t.Fatalf("row width %d, want %d", len(l), card.Config.ViolBins)
		}
	}
	if !strings.ContainsAny(s, "Ss") || !strings.ContainsAny(s, ".,") {
		t.Error("card should contain both GO and STOP cells")
	}
}

func TestDecideUsesBins(t *testing.T) {
	card := BuildCard(syntheticCorpus(100), CardConfig{})
	// Huge DRVs, no improvement: must be STOP in any sane card.
	if card.Decide(100000, 120000) != STOP {
		t.Error("exploding DRVs should STOP")
	}
	// Tiny DRVs: GO (or the run is about to end anyway).
	if card.Decide(10, 5) != GO {
		t.Error("near-clean run should GO")
	}
}

func TestEvaluateOnRealCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation in short mode")
	}
	train := logfile.Generate(logfile.CorpusSpec{Name: "artificial", Runs: 240, Seed: 1, Designs: 3})
	test := logfile.Generate(logfile.CorpusSpec{Name: "embedded-cpu", Runs: 300, Seed: 2, Designs: 3})
	card := BuildCard(train, CardConfig{})
	e1 := card.Evaluate(test, 1)
	e3 := card.Evaluate(test, 3)
	// The paper's qualitative result: requiring 3 consecutive STOPs
	// reduces Type-1 errors dramatically while Type-2 stays small.
	if e3.Type1 > e1.Type1 {
		t.Errorf("k=3 Type1 (%d) should not exceed k=1 Type1 (%d)", e3.Type1, e1.Type1)
	}
	if e3.TotalErrorPct > 50 {
		t.Errorf("k=3 error %v%% implausibly high", e3.TotalErrorPct)
	}
}

func BenchmarkBuildCard(b *testing.B) {
	runs := syntheticCorpus(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCard(runs, CardConfig{})
	}
}

func BenchmarkEvaluateCard(b *testing.B) {
	runs := syntheticCorpus(300)
	card := BuildCard(runs, CardConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		card.Evaluate(runs, 3)
	}
}
