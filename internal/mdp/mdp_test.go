package mdp

import (
	"math"
	"testing"
)

// chainMDP: states 0..n-1 in a line; action 0 moves right with reward -1,
// action 1 stays with reward 0; last state is terminal with entry reward
// +10 folded into the move.
func chainMDP(n int) *MDP {
	m := New(n, 2, 0.95)
	m.Terminal[n-1] = true
	for s := 0; s < n-1; s++ {
		m.Trans[s][0] = []Transition{{To: s + 1, Prob: 1}}
		m.Reward[s][0] = -1
		if s+1 == n-1 {
			m.Reward[s][0] = 10
		}
		m.Trans[s][1] = []Transition{{To: s, Prob: 1}}
		m.Reward[s][1] = 0
	}
	return m
}

func TestValidate(t *testing.T) {
	m := chainMDP(5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Trans[0][0][0].Prob = 0.5
	if err := m.Validate(); err == nil {
		t.Fatal("bad distribution not caught")
	}
	m2 := chainMDP(3)
	m2.Trans[0][0][0].To = 99
	if err := m2.Validate(); err == nil {
		t.Fatal("out-of-range target not caught")
	}
}

func TestValueIterationChain(t *testing.T) {
	m := chainMDP(6)
	v, policy := m.ValueIteration(1e-9, 0)
	// Moving right is optimal everywhere: the +10 at the end dominates.
	for s := 0; s < 5; s++ {
		if policy[s] != 0 {
			t.Errorf("state %d: policy %d, want move-right", s, policy[s])
		}
	}
	// Value increases toward the goal.
	for s := 1; s < 5; s++ {
		if v[s] <= v[s-1] {
			t.Errorf("values should rise toward goal: v[%d]=%v v[%d]=%v", s-1, v[s-1], s, v[s])
		}
	}
}

func TestPolicyIterationMatchesValueIteration(t *testing.T) {
	m := chainMDP(8)
	vVI, pVI := m.ValueIteration(1e-10, 0)
	vPI, pPI := m.PolicyIteration(0)
	for s := 0; s < m.NumStates; s++ {
		if pVI[s] != pPI[s] {
			t.Errorf("state %d: VI policy %d vs PI policy %d", s, pVI[s], pPI[s])
		}
		if math.Abs(vVI[s]-vPI[s]) > 1e-6 {
			t.Errorf("state %d: VI value %v vs PI value %v", s, vVI[s], vPI[s])
		}
	}
}

func TestStochasticMDP(t *testing.T) {
	// Two states: action 0 risky (50% +2 terminal, 50% back with -1),
	// action 1 safe (terminal +0.4). With gamma near 1, risky is
	// better in expectation.
	m := New(3, 2, 0.99)
	m.Terminal[2] = true
	m.Trans[0][0] = []Transition{{To: 2, Prob: 0.5}, {To: 0, Prob: 0.5}}
	m.Reward[0][0] = 0.5*2 + 0.5*(-1)
	m.Trans[0][1] = []Transition{{To: 2, Prob: 1}}
	m.Reward[0][1] = 0.4
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	_, policy := m.ValueIteration(1e-9, 0)
	if policy[0] != 0 {
		t.Errorf("expected risky action, got %d", policy[0])
	}
}

func TestTerminalStatesKeepZeroValue(t *testing.T) {
	m := chainMDP(4)
	v, _ := m.ValueIteration(1e-9, 0)
	if v[3] != 0 {
		t.Errorf("terminal value %v, want 0", v[3])
	}
}

func TestActionString(t *testing.T) {
	if GO.String() != "GO" || STOP.String() != "STOP" {
		t.Error("action names wrong")
	}
}

func TestViolBinMonotone(t *testing.T) {
	cfg := CardConfig{}.withDefaults()
	prev := -1
	for _, drv := range []int{0, 1, 3, 10, 50, 200, 1000, 10000, 1 << 20, 1 << 30} {
		b := cfg.ViolBin(drv)
		if b < prev {
			t.Fatalf("ViolBin not monotone at %d", drv)
		}
		if b < 0 || b >= cfg.ViolBins {
			t.Fatalf("ViolBin(%d) = %d out of range", drv, b)
		}
		prev = b
	}
	if cfg.ViolBin(-5) != 0 {
		t.Error("negative DRVs should bin to 0")
	}
}

func TestFillRules(t *testing.T) {
	cfg := CardConfig{}.withDefaults()
	// (iii) very large violations -> STOP even with negative slope.
	if fillRule(cfg, cfg.ViolBins-1, -5) != STOP {
		t.Error("very large violations should STOP")
	}
	// (i) large violations, positive slope -> STOP.
	if fillRule(cfg, cfg.ViolBins/2, 1) != STOP {
		t.Error("large violations with positive slope should STOP")
	}
	// (ii) small violations, large positive slope -> STOP.
	if fillRule(cfg, 1, 4) != STOP {
		t.Error("small violations with large positive slope should STOP")
	}
	// (iv) small violations, negative slope -> GO.
	if fillRule(cfg, 2, -2) != GO {
		t.Error("small violations with negative slope should GO")
	}
	// Moderately large with negative slope -> GO (the card's
	// distinctive region in Fig. 10).
	if fillRule(cfg, 5, -2) != GO {
		t.Error("moderate violations improving should GO")
	}
}
