package mdp

import (
	"math"
	"strings"

	"repro/internal/logfile"
	"repro/internal/route"
)

// Action is a strategy-card decision.
type Action int

// GO continues the tool run for another iteration; STOP terminates it
// (the paper's blackjack "hit"/"stay" analogy).
const (
	GO Action = iota
	STOP
)

func (a Action) String() string {
	if a == STOP {
		return "STOP"
	}
	return "GO"
}

// CardConfig parameterizes strategy-card construction.
type CardConfig struct {
	ViolBins  int // bins of log2(DRVs+1) (default 18, as in Fig. 10's x-axis)
	DeltaSpan int // delta axis covers [-DeltaSpan, +DeltaSpan] (default 10)

	StepReward    float64 // small negative reward per continued iteration (default -1)
	SuccessReward float64 // large positive reward for ending with low DRVs (default +100)
	FailureReward float64 // negative reward for running a doomed run to completion (default -40)
	StopReward    float64 // reward for terminating early (default 0)
	Gamma         float64 // discount (default 0.98)
}

func (c CardConfig) withDefaults() CardConfig {
	if c.ViolBins <= 0 {
		c.ViolBins = 18
	}
	if c.DeltaSpan <= 0 {
		c.DeltaSpan = 10
	}
	if c.StepReward == 0 {
		c.StepReward = -1
	}
	if c.SuccessReward == 0 {
		c.SuccessReward = 100
	}
	if c.FailureReward == 0 {
		c.FailureReward = -40
	}
	if c.Gamma == 0 {
		c.Gamma = 0.98
	}
	return c
}

// ViolBin maps a DRV count to its log-scale bin.
func (c CardConfig) ViolBin(drvs int) int {
	if drvs < 0 {
		drvs = 0
	}
	b := int(math.Log2(float64(drvs) + 1))
	if b >= c.ViolBins {
		b = c.ViolBins - 1
	}
	return b
}

// Card is the MDP-derived strategy card of Fig. 10: a GO/STOP action for
// every (binned violations, change in binned violations) state.
type Card struct {
	Config CardConfig
	// Action[vb][ds] with ds = delta + DeltaSpan.
	Action [][]Action
	// Seen marks states observed in training data (unseen states are
	// filled programmatically per the paper's footnote 5).
	Seen [][]bool
	// Values holds the MDP state values for observed states.
	Values [][]float64
}

// deltaIndex clamps a bin delta into the card's delta axis.
func (c CardConfig) deltaIndex(delta int) int {
	if delta < -c.DeltaSpan {
		delta = -c.DeltaSpan
	}
	if delta > c.DeltaSpan {
		delta = c.DeltaSpan
	}
	return delta + c.DeltaSpan
}

// Decide returns the card's action for a current and previous DRV count.
func (card *Card) Decide(prevDRVs, curDRVs int) Action {
	vb := card.Config.ViolBin(curDRVs)
	ds := card.Config.deltaIndex(card.Config.ViolBin(curDRVs) - card.Config.ViolBin(prevDRVs))
	return card.Action[vb][ds]
}

// String renders the card as an ASCII grid (rows = delta descending,
// columns = violation bin ascending; '.' GO, 'S' STOP, lowercase for
// filled-in unseen states).
func (card *Card) String() string {
	var b strings.Builder
	span := card.Config.DeltaSpan
	for ds := 2 * span; ds >= 0; ds-- {
		for vb := 0; vb < card.Config.ViolBins; vb++ {
			ch := byte('.')
			if card.Action[vb][ds] == STOP {
				ch = 'S'
			}
			if !card.Seen[vb][ds] && ch == 'S' {
				ch = 's'
			} else if !card.Seen[vb][ds] && ch == '.' {
				ch = ','
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BuildCard derives a strategy card from training logfiles: an empirical
// MDP over (violation bin, delta bin) states is assembled from the run
// series, solved by policy iteration, and unseen states are filled with
// the paper's footnote-5 rules.
func BuildCard(runs []logfile.Run, cfg CardConfig) *Card {
	cfg = cfg.withDefaults()
	span := cfg.DeltaSpan
	nd := 2*span + 1
	numGrid := cfg.ViolBins * nd
	// States: grid states, then 2 absorbing terminals (stop, done).
	stopState := numGrid
	doneState := numGrid + 1
	stateOf := func(vb, ds int) int { return vb*nd + ds }

	// Empirical transition counts for GO.
	counts := make([]map[int]float64, numGrid)
	for i := range counts {
		counts[i] = make(map[int]float64)
	}
	// Terminal reward accumulators for runs that end at a state.
	endReward := make([]float64, numGrid)
	endCount := make([]float64, numGrid)
	seen := make([]bool, numGrid)

	for _, r := range runs {
		if len(r.DRVs) < 2 {
			continue
		}
		prevState := -1
		for t := 1; t < len(r.DRVs); t++ {
			vb := cfg.ViolBin(r.DRVs[t])
			ds := cfg.deltaIndex(vb - cfg.ViolBin(r.DRVs[t-1]))
			s := stateOf(vb, ds)
			seen[s] = true
			if prevState >= 0 {
				counts[prevState][s]++
			}
			prevState = s
		}
		if prevState >= 0 {
			if r.Success {
				endReward[prevState] += cfg.SuccessReward
			} else {
				endReward[prevState] += cfg.FailureReward
			}
			endCount[prevState]++
		}
	}

	m := New(numGrid+2, 2, cfg.Gamma)
	m.Terminal[stopState] = true
	m.Terminal[doneState] = true
	for s := 0; s < numGrid; s++ {
		// STOP: terminal with stop reward.
		m.Trans[s][int(STOP)] = []Transition{{To: stopState, Prob: 1}}
		m.Reward[s][int(STOP)] = cfg.StopReward
		// GO: empirical continuation plus empirical termination.
		var total float64
		for _, c := range counts[s] {
			total += c
		}
		total += endCount[s]
		if total == 0 {
			// Unseen or dead-end state: GO behaves like STOP.
			m.Trans[s][int(GO)] = []Transition{{To: stopState, Prob: 1}}
			m.Reward[s][int(GO)] = cfg.StopReward
			continue
		}
		var ts []Transition
		for to, c := range counts[s] {
			ts = append(ts, Transition{To: to, Prob: c / total})
		}
		reward := cfg.StepReward
		if endCount[s] > 0 {
			ts = append(ts, Transition{To: doneState, Prob: endCount[s] / total})
			reward += endReward[s] / total
		}
		m.Trans[s][int(GO)] = ts
		m.Reward[s][int(GO)] = reward
	}
	values, policy := m.PolicyIteration(0)

	card := &Card{Config: cfg}
	card.Action = make([][]Action, cfg.ViolBins)
	card.Seen = make([][]bool, cfg.ViolBins)
	card.Values = make([][]float64, cfg.ViolBins)
	for vb := 0; vb < cfg.ViolBins; vb++ {
		card.Action[vb] = make([]Action, nd)
		card.Seen[vb] = make([]bool, nd)
		card.Values[vb] = make([]float64, nd)
		for ds := 0; ds < nd; ds++ {
			s := stateOf(vb, ds)
			card.Seen[vb][ds] = seen[s]
			card.Values[vb][ds] = values[s]
			if seen[s] {
				card.Action[vb][ds] = Action(policy[s])
			} else {
				card.Action[vb][ds] = fillRule(cfg, vb, ds-span)
			}
		}
	}
	return card
}

// fillRule implements the paper's footnote-5 programmatic fill-in for
// states absent from training logfiles:
//
//	(i)   large violations and positive slope  -> STOP
//	(ii)  small violations and large positive slope -> STOP
//	(iii) very large violations -> STOP
//	(iv)  everything else -> GO
func fillRule(cfg CardConfig, violBin, delta int) Action {
	// Thresholds sit just above the success criterion (<200 DRVs is
	// bin ~7): a plateau at thousands of DRVs is hopeless whatever the
	// slope, and the consecutive-STOP hysteresis protects successful
	// runs that merely pass through these bins while decaying.
	large := violBin >= cfg.ViolBins*4/9     // "large violations" (~bin 8)
	veryLarge := violBin >= cfg.ViolBins*5/8 // "very large violations" (~bin 11)
	switch {
	case large && delta > 0:
		return STOP
	case !large && delta >= 3:
		return STOP
	case veryLarge:
		return STOP
	default:
		return GO
	}
}

// Outcome applies the card to one run, requiring k consecutive STOP
// signals before actually terminating. It returns the iteration at which
// the run was stopped (or -1 if it ran to completion).
func (card *Card) Outcome(r logfile.Run, k int) int {
	if k < 1 {
		k = 1
	}
	consec := 0
	for t := 1; t < len(r.DRVs); t++ {
		if card.Decide(r.DRVs[t-1], r.DRVs[t]) == STOP {
			consec++
			if consec >= k {
				return t
			}
		} else {
			consec = 0
		}
	}
	return -1
}

// EvalResult holds the Table-1 error accounting for one consecutive-STOP
// setting on one corpus.
type EvalResult struct {
	ConsecutiveStops int
	Runs             int
	Type1            int     // stopped a run that would have succeeded
	Type2            int     // let a doomed run go to completion
	TotalErrorPct    float64 // (Type1+Type2)/Runs * 100
	// IterationsSaved counts router iterations avoided on doomed runs
	// that were stopped early ("for the runs that are doomed,
	// substantial iterations are saved").
	IterationsSaved int
	IterationsTotal int
}

// Evaluate applies the card to a corpus with the given consecutive-STOP
// requirement and computes Type 1 / Type 2 error rates, using the
// paper's success criterion (final DRVs < 200).
func (card *Card) Evaluate(runs []logfile.Run, consecutiveStops int) EvalResult {
	res := EvalResult{ConsecutiveStops: consecutiveStops, Runs: len(runs)}
	for _, r := range runs {
		iters := len(r.DRVs) - 1
		res.IterationsTotal += iters
		stoppedAt := card.Outcome(r, consecutiveStops)
		success := r.Final < route.SuccessDRVThreshold
		switch {
		case stoppedAt >= 0 && success:
			res.Type1++
		case stoppedAt < 0 && !success:
			res.Type2++
		}
		if stoppedAt >= 0 && !success {
			res.IterationsSaved += iters - stoppedAt
		}
	}
	if res.Runs > 0 {
		res.TotalErrorPct = 100 * float64(res.Type1+res.Type2) / float64(res.Runs)
	}
	return res
}
