package cts

import (
	"math"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/place"
)

func placed(seed int64) *netlist.Netlist {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
	place.Place(n, place.Options{Seed: seed, Moves: 5000})
	return n
}

func TestSynthesizeBasics(t *testing.T) {
	n := placed(1)
	r := Synthesize(n, Options{Seed: 1})
	if r.Buffers == 0 {
		t.Fatal("no buffers inserted")
	}
	if r.LatencyPs <= 0 {
		t.Fatalf("latency %v", r.LatencyPs)
	}
	if r.WirelengthUm <= 0 || r.AreaUm2 <= 0 || r.PowerNW <= 0 {
		t.Fatalf("missing accounting: %+v", r)
	}
	if len(r.SkewPs) != n.NumCells() {
		t.Fatalf("skew vector sized %d, want %d", len(r.SkewPs), n.NumCells())
	}
}

func TestSkewZeroMeanOverSinks(t *testing.T) {
	n := placed(2)
	r := Synthesize(n, Options{Seed: 1})
	var sum float64
	count := 0
	for _, ff := range n.Sequential() {
		sum += r.SkewPs[ff]
		count++
	}
	if count == 0 {
		t.Fatal("no sinks")
	}
	if mean := sum / float64(count); math.Abs(mean) > 1e-9 {
		t.Errorf("skew mean over sinks = %v, want 0", mean)
	}
	for i := range n.Insts {
		if !n.Insts[i].Cell.Class.Sequential() && r.SkewPs[i] != 0 {
			t.Errorf("non-sink inst %d has skew %v", i, r.SkewPs[i])
		}
	}
}

func TestMaxSkewConsistent(t *testing.T) {
	n := placed(3)
	r := Synthesize(n, Options{Seed: 1})
	var worst float64
	for _, s := range r.SkewPs {
		worst = math.Max(worst, math.Abs(s))
	}
	if math.Abs(worst-r.MaxSkewPs) > 1e-9 {
		t.Errorf("MaxSkewPs %v != observed %v", r.MaxSkewPs, worst)
	}
}

func TestFanoutLimitControlsBuffers(t *testing.T) {
	n := placed(4)
	small := Synthesize(n, Options{Seed: 1, FanoutLimit: 2})
	large := Synthesize(n, Options{Seed: 1, FanoutLimit: 64})
	if small.Buffers <= large.Buffers {
		t.Errorf("tighter fanout limit should need more buffers: %d vs %d", small.Buffers, large.Buffers)
	}
	if small.TreeLevels <= large.TreeLevels {
		t.Errorf("tighter fanout limit should deepen tree: %d vs %d", small.TreeLevels, large.TreeLevels)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	// Enough sinks that the tree splits (jitter applies only at
	// internal buffers).
	n := netlist.Generate(cellib.Default14nm(), netlist.Spec{
		Name: "ffheavy", Seed: 5, NumComb: 120, NumFFs: 48,
		Levels: 5, Locality: 0.6, NumPIs: 6, ClockPeriodPs: 1200,
	})
	place.Place(n, place.Options{Seed: 5, Moves: 5000})
	a := Synthesize(n, Options{Seed: 9})
	b := Synthesize(n, Options{Seed: 9})
	if a.LatencyPs != b.LatencyPs || a.MaxSkewPs != b.MaxSkewPs {
		t.Fatal("same seed differs")
	}
	c := Synthesize(n, Options{Seed: 10})
	if a.LatencyPs == c.LatencyPs && a.MaxSkewPs == c.MaxSkewPs {
		t.Error("jittered CTS should vary with seed")
	}
}

func TestNoSinksNoTree(t *testing.T) {
	lib := cellib.Default14nm()
	n := &netlist.Netlist{Name: "comb", Lib: lib, ClockNet: -1}
	n.AddInstance(lib.Smallest(cellib.Inverter), "")
	r := Synthesize(n, Options{Seed: 1})
	if r.Buffers != 0 || r.LatencyPs != 0 {
		t.Fatalf("combinational design grew a clock tree: %+v", r)
	}
}

func TestSkewFeedsSTA(t *testing.T) {
	n := placed(6)
	r := Synthesize(n, Options{Seed: 1})
	// Must be accepted by the STA config without panics and change
	// nothing structurally.
	if len(r.SkewPs) != n.NumCells() {
		t.Fatal("skew vector length mismatch")
	}
}
