// Package cts implements clock-tree synthesis over the placed design: a
// recursive geometric (means-and-medians style) buffer tree over all
// flip-flop sinks, yielding per-sink insertion latency and skew.
//
// The resulting skew vector feeds the signoff timing analysis (the
// "clock buffer and topology change through ... timing analysis"
// prediction chain the paper cites as ref [13]).
package cts

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

// Options are the CTS knobs.
type Options struct {
	Seed        int64
	FanoutLimit int     // max sinks driven by one buffer (default 16)
	Jitter      float64 // buffer placement jitter in um (default 0.5; tool noise)
}

func (o Options) withDefaults() Options {
	if o.FanoutLimit <= 0 {
		o.FanoutLimit = 16
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	} else if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	return o
}

// Result reports the synthesized clock tree.
type Result struct {
	// SkewPs[inst] is the clock arrival offset of each instance
	// relative to the mean insertion latency (0 for non-sinks).
	SkewPs []float64

	MaxSkewPs    float64 // max |skew|
	LatencyPs    float64 // mean insertion delay
	Buffers      int     // clock buffers inserted
	TreeLevels   int     // depth of the buffer tree
	WirelengthUm float64 // total clock wirelength
	AreaUm2      float64 // added buffer area
	PowerNW      float64 // added buffer leakage
}

type sink struct {
	inst int
	x, y float64
}

// Synthesize builds a clock tree for the placed netlist and returns
// per-instance skews. The netlist is not modified; buffer area/power are
// reported for the flow to account.
func Synthesize(n *netlist.Netlist, opts Options) Result {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	buf := n.Lib.Variants(cellib.ClockBuffer)[2] // X4 clock buffer

	res := Result{SkewPs: make([]float64, n.NumCells())}
	ffs := n.Sequential()
	if len(ffs) == 0 {
		return res
	}
	sinks := make([]sink, len(ffs))
	for i, ff := range ffs {
		sinks[i] = sink{inst: ff, x: n.Insts[ff].X, y: n.Insts[ff].Y}
	}

	// Root at the sink centroid.
	var cx, cy float64
	for _, s := range sinks {
		cx += s.x
		cy += s.y
	}
	cx /= float64(len(sinks))
	cy /= float64(len(sinks))

	latency := make(map[int]float64, len(sinks))
	var build func(sinks []sink, x, y, acc float64, level int)
	build = func(sinks []sink, x, y, acc float64, level int) {
		if level > res.TreeLevels {
			res.TreeLevels = level
		}
		if len(sinks) <= opts.FanoutLimit {
			// Leaf buffer drives the sinks directly.
			load := float64(len(sinks)) // 1 fF clock pin cap per sink
			var wl float64
			for _, s := range sinks {
				wl += math.Abs(s.x-x) + math.Abs(s.y-y)
			}
			res.WirelengthUm += wl
			load += n.Lib.Wire.CapPerUm * wl
			d := buf.Delay(load)
			res.Buffers++
			res.AreaUm2 += buf.Area
			res.PowerNW += buf.Leakage
			for _, s := range sinks {
				wire := n.Lib.Wire.Delay(math.Abs(s.x-x)+math.Abs(s.y-y), buf.Resist)
				latency[s.inst] = acc + d + wire
			}
			return
		}
		// Split along the wider dimension at the median.
		minX, maxX := sinks[0].x, sinks[0].x
		minY, maxY := sinks[0].y, sinks[0].y
		for _, s := range sinks {
			minX, maxX = math.Min(minX, s.x), math.Max(maxX, s.x)
			minY, maxY = math.Min(minY, s.y), math.Max(maxY, s.y)
		}
		byX := maxX-minX >= maxY-minY
		sort.Slice(sinks, func(i, j int) bool {
			if byX {
				return sinks[i].x < sinks[j].x
			}
			return sinks[i].y < sinks[j].y
		})
		mid := len(sinks) / 2
		halves := [][]sink{sinks[:mid], sinks[mid:]}
		res.Buffers++
		res.AreaUm2 += buf.Area
		res.PowerNW += buf.Leakage
		for _, h := range halves {
			var hx, hy float64
			for _, s := range h {
				hx += s.x
				hy += s.y
			}
			hx = hx/float64(len(h)) + (rng.Float64()-0.5)*opts.Jitter
			hy = hy/float64(len(h)) + (rng.Float64()-0.5)*opts.Jitter
			dist := math.Abs(hx-x) + math.Abs(hy-y)
			res.WirelengthUm += dist
			stage := buf.Delay(2*buf.InputCap+n.Lib.Wire.CapPerUm*dist) +
				n.Lib.Wire.Delay(dist, buf.Resist)
			build(h, hx, hy, acc+stage, level+1)
		}
	}
	build(sinks, cx, cy, 0, 1)

	// Iterate sinks in ID order: map-order float summation would make
	// the last bits of latency (and thus skew) nondeterministic.
	insts := make([]int, 0, len(latency))
	for inst := range latency {
		insts = append(insts, inst)
	}
	sort.Ints(insts)
	var sum float64
	for _, inst := range insts {
		sum += latency[inst]
	}
	res.LatencyPs = sum / float64(len(latency))
	for _, inst := range insts {
		sk := latency[inst] - res.LatencyPs
		res.SkewPs[inst] = sk
		if math.Abs(sk) > res.MaxSkewPs {
			res.MaxSkewPs = math.Abs(sk)
		}
	}
	return res
}
