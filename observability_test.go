// Observability integration: the warehouse's record set is the
// campaign's QoR result, restated — one record per (point, stage),
// scalars exactly equal to the sweep output, byte-identical no matter
// how many nodes computed it. These tests pin the ISSUE's acceptance
// clause at the API level; scripts/check.sh obs repeats it end-to-end
// through the CLIs.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/journal"
	"repro/internal/warehouse"
)

func obsSweepConfig(t *testing.T) SweepConfig {
	t.Helper()
	return SweepConfig{
		Design: NewDesign(DefaultLibrary(), TinyDesign(1)),
		Freqs:  []float64{0.35, 0.5},
		Seeds:  []int64{1, 2},
	}
}

// flowStages is the stage set every completed point emits.
var flowStages = []string{"synth", "place", "cts", "groute", "droute", "sta"}

// TestWarehouseMatchesSweep: every (point, stage) yields exactly one
// record, and the sta record's scalars equal the campaign's own QoR
// output for that point.
func TestWarehouseMatchesSweep(t *testing.T) {
	wh, err := warehouse.Open("", journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	cfg := obsSweepConfig(t)
	cfg.Warehouse = wh
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pts, err := CampaignPoints(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := wh.Select(warehouse.Query{Campaign: CampaignID(pts)})
	if want := len(pts) * len(flowStages); len(recs) != want {
		t.Fatalf("warehouse has %d records, want %d (%d points x %d stages)", len(recs), want, len(pts), len(flowStages))
	}
	byPoint := map[int]map[string]warehouse.Record{}
	for _, r := range recs {
		if byPoint[r.Point] == nil {
			byPoint[r.Point] = map[string]warehouse.Record{}
		}
		if _, dup := byPoint[r.Point][r.Stage]; dup {
			t.Fatalf("duplicate record for point %d stage %s", r.Point, r.Stage)
		}
		byPoint[r.Point][r.Stage] = r
	}
	for i, p := range res.Points {
		stages := byPoint[i]
		for _, s := range flowStages {
			if _, ok := stages[s]; !ok {
				t.Fatalf("point %d missing stage %s", i, s)
			}
		}
		sta := stages["sta"]
		if sta.Scalars["wns"] != p.WNSPs || sta.Scalars["maxfreq"] != p.MaxFreqGHz {
			t.Fatalf("point %d sta record (wns=%g maxfreq=%g) != sweep result (wns=%g maxfreq=%g)",
				i, sta.Scalars["wns"], sta.Scalars["maxfreq"], p.WNSPs, p.MaxFreqGHz)
		}
		if sta.FreqGHz != p.FreqGHz || sta.Seed != p.Seed {
			t.Fatalf("point %d record identity (freq=%g seed=%d) != sweep point (freq=%g seed=%d)",
				i, sta.FreqGHz, sta.Seed, p.FreqGHz, p.Seed)
		}
	}
}

// TestWarehouseDistByteIdentical: the canonical dump from a 3-node
// DistSweep equals the single-node dump byte for byte — node count is
// invisible in the warehouse, exactly as it is in the sweep output.
func TestWarehouseDistByteIdentical(t *testing.T) {
	single, _ := warehouse.Open("", journal.Options{})
	defer single.Close()
	scfg := obsSweepConfig(t)
	scfg.Warehouse = single
	sres, err := Sweep(scfg)
	if err != nil {
		t.Fatal(err)
	}

	distWh, _ := warehouse.Open("", journal.Options{})
	defer distWh.Close()
	dcfg := DistSweepConfig{SweepConfig: obsSweepConfig(t), Nodes: 3, Warehouse: distWh}
	dres, err := DistSweep(dcfg)
	if err != nil {
		t.Fatal(err)
	}

	var sout, dout bytes.Buffer
	sres.Print(&sout)
	dres.Print(&dout)
	if !bytes.Equal(sout.Bytes(), dout.Bytes()) {
		t.Fatalf("sweep output diverged:\n--- single\n%s--- dist\n%s", &sout, &dout)
	}

	pts, _ := CampaignPoints(scfg)
	id := CampaignID(pts)
	var sdump, ddump bytes.Buffer
	single.DumpCanonical(&sdump, id)
	distWh.DumpCanonical(&ddump, id)
	if sdump.Len() == 0 {
		t.Fatal("single-node dump is empty")
	}
	if !bytes.Equal(sdump.Bytes(), ddump.Bytes()) {
		t.Fatalf("warehouse dump diverged across node counts:\n--- single\n%s--- dist\n%s", &sdump, &ddump)
	}
}
