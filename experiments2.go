package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/flow"
	"repro/internal/gwtw"
	"repro/internal/mab"
	"repro/internal/multistart"
	"repro/internal/sizing"
	"repro/internal/sta"
)

// ---------------------------------------------------------------------
// Figure 6(a): go-with-the-winners vs independent multistart.

// Fig6aResult compares GWTW against independent threads at equal budget.
type Fig6aResult struct {
	GWTWCost        float64
	IndependentCost float64
	Rounds          int
	Population      int
	TotalSteps      int
	// Trace is the GWTW population-cost trace (per round, sorted).
	Trace [][]float64
}

// Fig6a runs gate-sizing GWTW on a timing-constrained design.
func Fig6a(scale Scale, seed int64) Fig6aResult {
	design := designForScale(scale, seed)
	// Constrain to ~90% of achievable so the sizing problem is tense.
	rep := sta.Analyze(design, sta.Config{Engine: sta.Signoff})
	design.ClockPeriodPs = 1000 / rep.MaxFreqGHz * 0.92

	cfg := gwtw.Config{Population: 8, Rounds: 8, StepsPerRound: 30, Seed: seed}
	if scale == Paper {
		cfg = gwtw.Config{Population: 12, Rounds: 12, StepsPerRound: 60, Seed: seed}
	}
	engine := sta.Config{Engine: sta.Fast}
	newThread := func(i int) gwtw.Optimizer {
		return sizing.NewAnnealer(design, engine, seed+int64(i)*31)
	}
	g := gwtw.Run(newThread, cfg)
	ind := gwtw.RunIndependent(newThread, cfg)
	return Fig6aResult{
		GWTWCost:        g.BestCost,
		IndependentCost: ind.BestCost,
		Rounds:          cfg.Rounds,
		Population:      cfg.Population,
		TotalSteps:      g.TotalSteps,
		Trace:           g.Trace,
	}
}

// Print writes the comparison.
func (r Fig6aResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6(a): GWTW vs independent multistart (gate sizing, %d threads x %d rounds, %d steps)\n",
		r.Population, r.Rounds, r.TotalSteps)
	fmt.Fprintf(w, "GWTW best cost:        %.2f\n", r.GWTWCost)
	fmt.Fprintf(w, "independent best cost: %.2f\n", r.IndependentCost)
	if len(r.Trace) > 0 {
		fmt.Fprintf(w, "population best per round:")
		for _, costs := range r.Trace {
			fmt.Fprintf(w, " %.0f", costs[0])
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------
// Figure 6(b): adaptive multistart and the big valley.

// Fig6bResult compares adaptive against random multistart on placement.
type Fig6bResult struct {
	AdaptiveBest     float64
	RandomBest       float64
	CostDistanceCorr float64 // big-valley signature (positive)
	Starts           int
}

// Fig6b runs the placement multistart comparison.
func Fig6b(scale Scale, seed int64) Fig6bResult {
	design := designForScale(scale, seed)
	p := multistart.NewPlacementProblem(design)
	cfg := multistart.Config{Starts: 8, LocalSteps: 1500, Seed: seed}
	if scale == Paper {
		cfg = multistart.Config{Starts: 16, LocalSteps: 6000, Seed: seed}
	}
	ad := multistart.Adaptive(p, cfg)
	rnd := multistart.Random(p, cfg)
	return Fig6bResult{
		AdaptiveBest:     ad.BestCost,
		RandomBest:       rnd.BestCost,
		CostDistanceCorr: rnd.CostDistanceCorr,
		Starts:           cfg.Starts,
	}
}

// Print writes the comparison.
func (r Fig6bResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6(b): adaptive multistart (placement, %d starts)\n", r.Starts)
	fmt.Fprintf(w, "adaptive best HPWL: %.1f\n", r.AdaptiveBest)
	fmt.Fprintf(w, "random   best HPWL: %.1f\n", r.RandomBest)
	fmt.Fprintf(w, "cost-distance correlation (big valley): %.3f\n", r.CostDistanceCorr)
}

// ---------------------------------------------------------------------
// Figure 7: MAB sampling of the SP&R flow.

// AlgoScore compares bandit policies at equal budget: the best feasible
// frequency found (exploration) and the total shaped reward earned
// (sampling efficiency — the bandit objective the paper optimizes).
type AlgoScore struct {
	BestFreqGHz float64
	TotalReward float64
}

// Fig7Result is the bandit search trace for one algorithm, plus the
// comparison across algorithms the paper summarizes ("TS is found to be
// more robust").
type Fig7Result struct {
	Main       *SearchResult
	Comparison map[string]AlgoScore
	Arms       []float64
}

// shapedReward sums the satisfied samples' frequency-weighted rewards.
func shapedReward(r *SearchResult, maxArm float64) float64 {
	var total float64
	for _, s := range r.Samples {
		if s.Satisfied {
			total += s.FreqGHz / maxArm
		}
	}
	return total
}

// Fig7 runs the 5-concurrent x N-iteration MAB sampling experiment.
func Fig7(scale Scale, seed int64) (Fig7Result, error) {
	design := designForScale(scale, seed)
	// Arms: a ladder of target frequencies straddling feasibility.
	probe := RunFlow(design, flow.Options{TargetFreqGHz: 0.3, Seed: seed})
	fmax := probe.MaxFreqGHz
	// The probe's fmax is a lower bound on what harder targets can
	// reach (synthesis works harder when pushed), so the ladder spans
	// well past it to guarantee infeasible arms.
	arms := []float64{fmax * 0.5, fmax * 0.7, fmax * 0.9, fmax * 1.1, fmax * 1.5, fmax * 3}

	cons := flow.Constraints{MaxAreaUm2: probe.AreaUm2 * 1.6, MaxPowerNW: probe.PowerNW * 1.8}
	iters := 10
	if scale == Paper {
		iters = 40
	}
	base := flowBase(seed)
	// One memo cache across all four policy searches: any option point
	// two searches both sample is computed once.
	cache := NewFlowCache(0)
	main, err := Search(design, base, cons, SearchConfig{
		Freqs: arms, Iterations: iters, Licenses: 5, Algorithm: "thompson", Seed: seed,
		FreqWeighted: true, Cache: cache,
	})
	if err != nil {
		return Fig7Result{}, err
	}
	maxArm := arms[len(arms)-1]
	cmp := map[string]AlgoScore{
		"thompson": {BestFreqGHz: main.BestFreqGHz, TotalReward: shapedReward(main, maxArm)},
	}
	for _, alg := range []string{"softmax", "eps-greedy", "ucb1"} {
		r, err := Search(design, base, cons, SearchConfig{
			Freqs: arms, Iterations: iters, Licenses: 5, Algorithm: alg, Seed: seed,
			FreqWeighted: true, Cache: cache,
		})
		if err != nil {
			return Fig7Result{}, err
		}
		cmp[alg] = AlgoScore{BestFreqGHz: r.BestFreqGHz, TotalReward: shapedReward(r, maxArm)}
	}
	return Fig7Result{Main: main, Comparison: cmp, Arms: arms}, nil
}

// Print writes the trajectory and comparison.
func (r Fig7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: MAB sampling (%s, %d runs, %d licenses)\n",
		r.Main.Algorithm, r.Main.TotalRuns, r.Main.PeakLicenses)
	fmt.Fprintf(w, "arms (GHz):")
	for _, f := range r.Arms {
		fmt.Fprintf(w, " %.3f", f)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-5s %-28s %s\n", "iter", "sampled (GHz, *=satisfied)", "best")
	for t := 0; ; t++ {
		var line string
		found := false
		for _, s := range r.Main.Samples {
			if s.Iteration != t {
				continue
			}
			found = true
			mark := " "
			if s.Satisfied {
				mark = "*"
			}
			line += fmt.Sprintf("%.2f%s ", s.FreqGHz, mark)
		}
		if !found {
			break
		}
		fmt.Fprintf(w, "%-5d %-28s %.3f\n", t, line, r.Main.BestFreqSoFar[t])
	}
	fmt.Fprintf(w, "algorithm comparison at equal budget:\n")
	fmt.Fprintf(w, "  %-10s %12s %14s\n", "policy", "best (GHz)", "total reward")
	for _, alg := range []string{"thompson", "softmax", "eps-greedy", "ucb1"} {
		s := r.Comparison[alg]
		fmt.Fprintf(w, "  %-10s %12.3f %14.2f\n", alg, s.BestFreqGHz, s.TotalReward)
	}
}

// BanditRobustness reproduces the paper's cross-setting claim about
// Thompson Sampling ("TS is found to be more robust ... across a wide
// range of settings, compared to other algorithms"): each policy runs on
// a grid of synthetic environments (arm counts, reward gaps, noise,
// horizons, concurrency) and is scored by its reward relative to the
// best policy in each setting. Robustness = the worst-case relative
// score across settings.
type BanditRobustness struct {
	// MeanRel and WorstRel map algorithm name to its mean and
	// worst-case reward relative to the per-setting best (1.0 = always
	// the best policy).
	MeanRel  map[string]float64
	WorstRel map[string]float64
	Settings int
}

// Fig7Robustness runs the cross-setting bandit study (pure synthetic
// environments; no flow runs, so it is cheap at any scale).
func Fig7Robustness(seed int64) BanditRobustness {
	algs := []string{"thompson", "softmax", "eps-greedy", "ucb1"}
	res := BanditRobustness{
		MeanRel:  map[string]float64{},
		WorstRel: map[string]float64{},
	}
	for _, a := range algs {
		res.WorstRel[a] = 1
	}
	type setting struct {
		env  mab.Environment
		iter int
		conc int
	}
	var settings []setting
	// Bernoulli ladders with wide and narrow gaps.
	for _, gap := range []float64{0.3, 0.1, 0.03} {
		probs := []float64{0.2, 0.2 + gap, 0.2 + 2*gap}
		settings = append(settings,
			setting{mab.Bernoulli{Probs: probs}, 40, 5},
			setting{mab.Bernoulli{Probs: probs}, 200, 1},
		)
	}
	// Gaussian arms with low and high noise (the i.i.d. tool-outcome
	// abstraction).
	for _, sigma := range []float64{0.05, 0.25} {
		means := []float64{0.3, 0.45, 0.6, 0.5, 0.35}
		sigmas := make([]float64, len(means))
		for i := range sigmas {
			sigmas[i] = sigma
		}
		settings = append(settings,
			setting{mab.GaussianArms{Means: means, Sigmas: sigmas}, 40, 5},
			setting{mab.GaussianArms{Means: means, Sigmas: sigmas}, 100, 10},
		)
	}
	res.Settings = len(settings)

	// Each setting's scores are independent of the others, so the grid
	// fans out over the campaign engine; the relative-score merge below
	// runs serially in setting order, keeping the floating-point
	// accumulation identical to the serial loop.
	const seedsPer = 6
	eng := campaign.New(campaign.Config{Workers: campaign.Workers(WorkerCount())})
	perSetting, _, _ := campaign.Map(context.Background(), eng, len(settings), //nolint:errcheck // background ctx never cancels
		func(i int) map[string]float64 {
			st := settings[i]
			totals := map[string]float64{}
			for s := int64(0); s < seedsPer; s++ {
				for _, name := range algs {
					alg, _ := NewAlgorithmByName(name, st.env.NumArms())
					h := mab.Simulate(alg, st.env, mab.Config{
						Iterations: st.iter, Concurrent: st.conc, Seed: seed + s,
					})
					totals[name] += h.TotalReward()
				}
			}
			return totals
		})
	for _, totals := range perSetting {
		best := 0.0
		for _, t := range totals {
			if t > best {
				best = t
			}
		}
		if best <= 0 {
			continue
		}
		for _, name := range algs {
			rel := totals[name] / best
			res.MeanRel[name] += rel / float64(res.Settings)
			if rel < res.WorstRel[name] {
				res.WorstRel[name] = rel
			}
		}
	}
	return res
}

// NewAlgorithmByName builds a bandit policy (exposed for the robustness
// study; mirrors core.NewAlgorithm without the error path).
func NewAlgorithmByName(name string, arms int) (mab.Algorithm, error) {
	return core.NewAlgorithm(name, arms)
}

// Print writes the robustness table.
func (r BanditRobustness) Print(w io.Writer) {
	fmt.Fprintf(w, "Bandit robustness over %d settings (reward relative to per-setting best)\n", r.Settings)
	fmt.Fprintf(w, "%-12s %8s %8s\n", "policy", "mean", "worst")
	for _, a := range []string{"thompson", "softmax", "eps-greedy", "ucb1"} {
		fmt.Fprintf(w, "%-12s %8.3f %8.3f\n", a, r.MeanRel[a], r.WorstRel[a])
	}
}

// ---------------------------------------------------------------------
// Figure 8: accuracy-cost tradeoff and the ML shift.

// Fig8Result is the curve of engine configurations plus the ML point.
type Fig8Result struct {
	Points []correlate.CurvePoint
}

// Fig8 builds the accuracy-cost curve with an ML-corrected fast engine.
func Fig8(scale Scale, seed int64) (Fig8Result, error) {
	lib := DefaultLibrary()
	var train []*Design
	n := 3
	if scale == Paper {
		n = 8
	}
	for i := 0; i < n; i++ {
		train = append(train, NewDesign(lib, TinyDesign(seed+int64(i))))
	}
	test := designForScale(scale, seed+100)
	pts, err := correlate.AccuracyCostCurve(train, test)
	if err != nil {
		return Fig8Result{}, err
	}
	return Fig8Result{Points: pts}, nil
}

// Print writes the curve.
func (r Fig8Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: accuracy-cost tradeoff in timing analysis\n")
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "engine", "cost", "accuracy%", "MAE(ps)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-16s %10.2f %9.1f%% %10.2f\n", p.Name, p.CostUnits, p.AccuracyPct, p.MAEPs)
	}
}
