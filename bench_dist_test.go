// Distributed-campaign benchmarks: the identical pulpino-proxy sweep
// run through the full coordinator/worker/store service over loopback
// HTTP at one worker node (the single-host reference deployment) and at
// four. Every point is unique and every iteration starts a fresh
// in-memory store, so nothing is served from memo state — the ratio is
// pure node scaling, with the real HTTP dispatch, claim, and gob
// encode/decode costs included. Both variants report the same qor_hash
// (byte-identity is the service's contract); scripts/check.sh dist
// derives the throughput ratio into BENCH_dist.json, gated at >= 1.8x.
package repro

import (
	"hash/fnv"
	"math"
	"sync"
	"testing"
)

// distBenchDesign generates the pulpino proxy once for both benchmarks:
// netlist generation is identical deployment-independent setup, and
// flows never mutate their input design, so paying it inside the timed
// loop would only dilute the scaling ratio under test.
var distBenchDesign = sync.OnceValue(func() *Design {
	return NewDesign(DefaultLibrary(), PulpinoProxy(1))
})

// distBenchSweep is the pulpino-proxy campaign shape: 3 frequencies x 8
// seeds = 24 points, enough that consistent-hash shard imbalance across
// 4 nodes stays well under the 1.8x gate's slack.
func distBenchSweep() SweepConfig {
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return SweepConfig{
		Design:  distBenchDesign(),
		Base:    FlowOptions{SynthEffort: 2},
		Freqs:   []float64{0.4, 0.5, 0.6},
		Seeds:   seeds,
		Workers: 2, // per-node licenses: the 1-node run is 2-way, the 4-node run 8-way
	}
}

// sweepQoRHash folds every printed QoR field of every point into 32
// bits (32 so the value survives the float64 benchmark metric channel
// exactly). Equal hashes mean the two deployments produced identical
// point tables.
func sweepQoRHash(res SweepResult) float64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf) //nolint:errcheck // fnv never fails
	}
	for _, p := range res.Points {
		put(math.Float64bits(p.FreqGHz))
		put(uint64(p.Seed))
		if p.Met {
			put(1)
		} else {
			put(0)
		}
		put(math.Float64bits(p.WNSPs))
		put(math.Float64bits(p.AreaUm2))
		put(math.Float64bits(p.PowerNW))
		put(math.Float64bits(p.MaxFreqGHz))
	}
	return float64(h.Sum64() & 0xffffffff)
}

func runDistBench(b *testing.B, nodes int) {
	var hash float64
	for i := 0; i < b.N; i++ {
		res, err := DistSweep(DistSweepConfig{SweepConfig: distBenchSweep(), Nodes: nodes})
		if err != nil {
			b.Fatal(err)
		}
		hash = sweepQoRHash(res)
	}
	b.ReportMetric(hash, "qor_hash")
}

func BenchmarkDistSweep1(b *testing.B) { runDistBench(b, 1) }
func BenchmarkDistSweep4(b *testing.B) { runDistBench(b, 4) }
