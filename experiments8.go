package repro

// PR 8: campaign-as-a-service. The paper's schedule argument is about
// fleets, not single machines — "typical SP&R flows can take up to
// several days ... on current design sizes", so real campaigns shard
// across many licenses on many hosts. This file promotes the crash-safe
// sweep to the distributed service in internal/dist: a shared
// WAL-backed result store, worker nodes running the unchanged campaign
// engine with the store as their cache's network tier, and a
// coordinator sharding points by content key. Byte-identity with the
// single-node sweep is the whole contract: the output is assembled from
// the store by content key, so node count, scheduling, even a worker
// killed mid-point cannot change a byte of it.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/journal"
	"repro/internal/warehouse"
)

// CampaignPoints expands a SweepConfig into the campaign's point list —
// the shared currency of the distributed service. The coordinator and
// every worker derive the identical list from the same config, and the
// single-node Sweep runs the same list, which is what makes the two
// modes diffable byte-for-byte.
func CampaignPoints(cfg SweepConfig) ([]campaign.Point, error) {
	if cfg.Design == nil {
		return nil, fmt.Errorf("repro: Sweep: nil design")
	}
	if len(cfg.Freqs) == 0 || len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("repro: Sweep: empty frequency or seed set")
	}
	key := campaign.KeyFor(cfg.Design)
	var pts []campaign.Point
	for _, f := range cfg.Freqs {
		base := cfg.Base
		base.TargetFreqGHz = f
		if cfg.Speculate {
			base.Speculate = flow.SpecConfig{Enabled: true, TolerancePct: cfg.SpecTolerancePct}
		}
		pts = append(pts, campaign.Points(cfg.Design, key, base, cfg.Seeds)...)
	}
	return pts, nil
}

// DistSweepConfig parameterizes a sharded sweep over in-process
// loopback nodes. SweepConfig.Workers becomes the per-node concurrency
// (each node models one licensed host), and JournalDir becomes the
// shared store's WAL directory — kill the whole deployment, rerun, and
// recovered points are served from the store instead of recomputed.
type DistSweepConfig struct {
	SweepConfig
	// Nodes is the worker node count (<=0 = 1).
	Nodes int
	// ChaosProfile, when non-empty, injects a deterministic fault
	// schedule from internal/chaos into every link of the deployment:
	// "flaky", "slow", "partition", or "kill". The contract under any
	// schedule with at least one live node is byte-identical output.
	ChaosProfile string
	// ChaosSeed keys the chaos coin schedule (and the RPC retry jitter).
	ChaosSeed int64
	// Stats, when non-nil, receives the coordinator's failure-handling
	// counters after the run (suspected, rejoined, rerouted, ...).
	Stats *dist.CoordStats
	// Warehouse, when non-nil, is served over loopback HTTP for the
	// duration of the sweep, and every worker node ingests its METRICS
	// records through its own HTTP client — the same ingest path a
	// multi-host fleet uses. Ingestion always bypasses the chaos
	// transports: observability must survive the faults it describes.
	Warehouse *warehouse.Warehouse
}

// DistSweep runs the sweep through the full coordinator/worker/store
// service over loopback HTTP. Point results are byte-identical to
// Sweep on the same config at any node count.
func DistSweep(cfg DistSweepConfig) (SweepResult, error) {
	var out SweepResult
	if cfg.Speculate {
		// The speculation oracle is an in-process artifact memory;
		// sharing it across nodes is future work.
		return out, fmt.Errorf("repro: DistSweep: -speculate is not supported in dist mode")
	}
	pts, err := CampaignPoints(cfg.SweepConfig)
	if err != nil {
		return out, err
	}
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 1
	}

	// The chaos engine (nil without a profile) wraps every endpoint's
	// transport; sources follow the deployment naming the schedules cut
	// on ("w0".."wN", "coord"; the store is a target, never a source).
	var eng *chaos.Engine
	var health dist.HealthConfig
	if cfg.ChaosProfile != "" {
		ccfg, err := chaos.Profile(cfg.ChaosProfile, cfg.ChaosSeed)
		if err != nil {
			return out, err
		}
		eng = chaos.New(ccfg)
		// Probe fast relative to the schedules' heal windows so a
		// partitioned node dies and rejoins within one soak run.
		health = dist.HealthConfig{
			ProbeInterval:  20 * time.Millisecond,
			ProbeTimeout:   300 * time.Millisecond,
			RejoinInterval: 40 * time.Millisecond,
		}
	}
	rpcFor := func(source string) dist.RPCConfig {
		var rt http.RoundTripper
		if eng != nil {
			rt = eng.Transport(source, dist.NewTransport())
		}
		return dist.RPCConfig{Seed: cfg.ChaosSeed, Transport: rt}
	}

	store, err := dist.OpenStore(cfg.JournalDir, journal.Options{})
	if err != nil {
		return out, err
	}
	defer store.Close()
	srv := dist.NewStoreServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return out, err
	}
	defer srv.Close()
	client := dist.NewStoreClientCfg("http://"+addr, dist.ClientConfig{RPC: rpcFor("coord")})
	defer client.Close()
	if cfg.JournalDir != "" {
		out.Recovery = store.WALStats()
		st := store.Stats()
		out.Resume = ResumeStats{Replayed: st.Recovered, Corrupt: st.Corrupt}
	}

	// With a warehouse configured, serve it over loopback and hand every
	// node its own HTTP ingest client — records flow node → warehouse
	// exactly as they would across real hosts, and first-wins dedupe on
	// (campaign, point, stage) absorbs replays and duplicate computes.
	var whURL string
	var emitters []*warehouse.Emitter
	if cfg.Warehouse != nil {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return out, err
		}
		whSrv := &http.Server{Handler: warehouse.NewHandler(cfg.Warehouse)}
		go whSrv.Serve(ln) //nolint:errcheck // Serve returns on Close
		defer whSrv.Close()
		whURL = "http://" + ln.Addr().String()
	}
	campaignID := CampaignID(pts)
	keys := pointKeys(pts)

	var coordNodes []dist.Node
	for i := 0; i < nodes; i++ {
		id := fmt.Sprintf("w%d", i)
		// Each worker gets its own store client so its RPCs carry its
		// own source name on the chaos graph (and its offline backlog is
		// per node, as it would be across real hosts).
		wclient := client
		if eng != nil {
			wclient = dist.NewStoreClientCfg("http://"+addr, dist.ClientConfig{RPC: rpcFor(id)})
			defer wclient.Close()
		}
		var obsv flow.Observer
		if whURL != "" {
			emit := warehouse.NewEmitter(campaignID, id, keys, warehouse.NewClient(whURL))
			emitters = append(emitters, emit)
			obsv = emit
		}
		w := dist.NewWorker(dist.WorkerConfig{
			ID:           id,
			Points:       pts,
			Store:        wclient,
			Workers:      cfg.Workers,
			StageTimeout: cfg.StageTimeout,
			Observer:     obsv,
		})
		waddr, err := w.Start("127.0.0.1:0")
		if err != nil {
			return out, err
		}
		defer w.Close()
		coordNodes = append(coordNodes, dist.Node{
			ID: id, URL: "http://" + waddr, Slots: campaign.Workers(cfg.Workers),
		})
	}

	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Points: pts, Nodes: coordNodes, Store: client,
		RPC: rpcFor("coord"), Health: health,
	})
	if err != nil {
		return out, err
	}
	results, err := coord.Run(context.Background())
	for _, emit := range emitters {
		emit.Flush()
	}
	if cfg.Stats != nil {
		*cfg.Stats = coord.Stats()
	}
	if err != nil {
		return out, err
	}
	out.JournalErr = store.Err()

	out.Points = make([]SweepPoint, len(results))
	for i, r := range results {
		out.Points[i] = SweepPoint{
			FreqGHz:    pts[i].Options.TargetFreqGHz,
			Seed:       pts[i].Options.Seed,
			Met:        r.Met,
			WNSPs:      r.WNSPs,
			AreaUm2:    r.AreaUm2,
			PowerNW:    r.PowerNW,
			MaxFreqGHz: r.MaxFreqGHz,
		}
	}
	return out, nil
}
