package repro

import (
	"fmt"
	"io"
	"math"

	"repro/internal/flow"
	"repro/internal/logfile"
	"repro/internal/mdp"
	"repro/internal/metrics"
)

// corpusSizes returns (training runs, testing runs) per scale; Paper
// matches the paper's 1200 artificial-layout and 3742 embedded-CPU
// logfiles.
func corpusSizes(scale Scale) (train, test, designs int) {
	if scale == Paper {
		return 1200, 3742, 6
	}
	return 160, 240, 2
}

// Corpora generates the training and testing logfile corpora. With a
// corpus journal configured (SetCorpusJournal), both corpora are
// crash-safe: completed runs are durable and a restarted experiment
// replays them instead of regenerating.
func Corpora(scale Scale, seed int64) (train, test []logfile.Run) {
	nTrain, nTest, designs := corpusSizes(scale)
	pw, rt := KernelParallel()
	train = journaledCorpus(logfile.CorpusSpec{
		Name: "artificial", Runs: nTrain, Seed: seed, Designs: designs,
		Workers: WorkerCount(), PlaceWorkers: pw, RouteTiles: rt,
	}, "train")
	test = journaledCorpus(logfile.CorpusSpec{
		Name: "embedded-cpu", Runs: nTest, Seed: seed + 1, Designs: designs,
		Workers: WorkerCount(), PlaceWorkers: pw, RouteTiles: rt,
	}, "test")
	return train, test
}

// ---------------------------------------------------------------------
// Figure 9: DRV progressions of the detailed router.

// Fig9Result holds representative DRV-vs-iteration series.
type Fig9Result struct {
	// Series maps a label (success/doomed flavor) to a DRV series.
	Labels []string
	Series [][]int
}

// Fig9 extracts four representative trajectories from a corpus: a clean
// success, a slow success, a plateauing doomed run, and a high doomed
// run — the four curves of the paper's figure.
func Fig9(scale Scale, seed int64) Fig9Result {
	runs, _ := Corpora(scale, seed)
	var res Fig9Result
	add := func(label string, r *logfile.Run) {
		if r != nil {
			res.Labels = append(res.Labels, label)
			res.Series = append(res.Series, r.DRVs)
		}
	}
	// Adaptive selection: the cleanest and slowest success, and the
	// lowest- and highest-plateau doomed runs (the paper's green,
	// orange and red flavors).
	var bestSucc, worstSucc, lowDoom, highDoom *logfile.Run
	mid := func(r *logfile.Run) int { return r.DRVs[len(r.DRVs)/2] }
	for i := range runs {
		r := &runs[i]
		if r.Success {
			// Fastest decay = lowest mid-run DRVs; slowest = highest.
			if bestSucc == nil || mid(r) < mid(bestSucc) {
				bestSucc = r
			}
			if worstSucc == nil || mid(r) > mid(worstSucc) {
				worstSucc = r
			}
		} else {
			if lowDoom == nil || r.Final < lowDoom.Final {
				lowDoom = r
			}
			if highDoom == nil || r.Final > highDoom.Final {
				highDoom = r
			}
		}
	}
	add("success/fast (green)", bestSucc)
	if worstSucc != nil && (bestSucc == nil || worstSucc.ID != bestSucc.ID) {
		add("success/slow", worstSucc)
	}
	add("doomed/plateau (orange)", lowDoom)
	if highDoom != nil && (lowDoom == nil || highDoom.ID != lowDoom.ID) {
		add("doomed/high (red)", highDoom)
	}
	return res
}

// Print writes the series on a log10 scale like the paper's plot.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 9: DRV progressions (log10 #DRVs per iteration)\n")
	for i, label := range r.Labels {
		fmt.Fprintf(w, "%-26s", label)
		for _, d := range r.Series[i] {
			fmt.Fprintf(w, " %5.1f", math.Log10(float64(d)+1))
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------
// Figure 10: the MDP strategy card.

// Fig10Result is the trained card.
type Fig10Result struct {
	Card       *mdp.Card
	TrainRuns  int
	TrainStats logfile.Stats
}

// Fig10 trains the strategy card on the artificial-layout corpus (the
// paper derives its card from 1400 industry logfiles).
func Fig10(scale Scale, seed int64) Fig10Result {
	train, _ := Corpora(scale, seed)
	card := mdp.BuildCard(train, mdp.CardConfig{})
	return Fig10Result{Card: card, TrainRuns: len(train), TrainStats: logfile.Summarize(train)}
}

// Print renders the card.
func (r Fig10Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 10: MDP strategy card from %d logfiles (%d success / %d doomed)\n",
		r.TrainRuns, r.TrainStats.Successes, r.TrainStats.Doomed)
	fmt.Fprintf(w, "rows: delta bin +%d..-%d (top to bottom); cols: violation bin 0..%d\n",
		r.Card.Config.DeltaSpan, r.Card.Config.DeltaSpan, r.Card.Config.ViolBins-1)
	fmt.Fprintf(w, "S/s = STOP, ./, = GO (lowercase = footnote-5 fill-in)\n")
	fmt.Fprint(w, r.Card.String())
}

// ---------------------------------------------------------------------
// Table 1: consecutive-STOP error rates.

// Table1Row is one row of the paper's error table.
type Table1Row struct {
	ConsecutiveStops int
	Train            mdp.EvalResult
	Test             mdp.EvalResult
}

// Table1Result is the full table.
type Table1Result struct {
	Rows      []Table1Row
	TrainRuns int
	TestRuns  int
}

// Table1 trains the card on the artificial corpus and evaluates 1/2/3
// consecutive-STOP policies on both corpora.
func Table1(scale Scale, seed int64) Table1Result {
	train, test := Corpora(scale, seed)
	card := mdp.BuildCard(train, mdp.CardConfig{})
	res := Table1Result{TrainRuns: len(train), TestRuns: len(test)}
	for _, k := range []int{1, 2, 3} {
		res.Rows = append(res.Rows, Table1Row{
			ConsecutiveStops: k,
			Train:            card.Evaluate(train, k),
			Test:             card.Evaluate(test, k),
		})
	}
	return res
}

// Print writes the table in the paper's layout.
func (r Table1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 1: doomed-run policy errors (train %d logfiles, test %d logfiles; success = <200 DRVs)\n",
		r.TrainRuns, r.TestRuns)
	fmt.Fprintf(w, "%-10s | %8s %7s %7s | %8s %7s %7s | %10s\n",
		"", "trainErr", "type1", "type2", "testErr", "type1", "type2", "saved iters")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d STOP%s    | %7.2f%% %7d %7d | %7.2f%% %7d %7d | %10d\n",
			row.ConsecutiveStops, plural(row.ConsecutiveStops),
			row.Train.TotalErrorPct, row.Train.Type1, row.Train.Type2,
			row.Test.TotalErrorPct, row.Test.Type1, row.Test.Type2,
			row.Test.IterationsSaved)
	}
}

func plural(k int) string {
	if k == 1 {
		return " "
	}
	return "s"
}

// ---------------------------------------------------------------------
// Figure 11: the METRICS loop end to end.

// Fig11Result summarizes an instrumented flow campaign through a live
// METRICS server.
type Fig11Result struct {
	Runs          int
	RecordsStored int64
	Rejected      int64
	BestFreqGHz   float64
	PrescribedLo  float64
	PrescribedHi  float64
	Suggested     flow.Options
	SensFreqArea  float64 // mined sensitivity: target freq -> synth area
}

// Fig11 stands up a METRICS server, instruments a flow campaign over a
// ladder of targets, then mines the store for guidance — the complete
// collect/store/mine/feed-back loop of the METRICS architecture.
func Fig11(scale Scale, seed int64) (Fig11Result, error) {
	srv := metrics.NewServer(nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return Fig11Result{}, err
	}
	defer srv.Close()
	tx := metrics.NewTransmitter("http://" + addr)

	design := designForScale(scale, seed)
	probe := RunFlow(design, flow.Options{TargetFreqGHz: 0.3, Seed: seed})
	fmax := probe.MaxFreqGHz
	targets := []float64{fmax * 0.6, fmax * 0.8, fmax * 0.9, fmax * 1.0, fmax * 1.1}
	runsPer := 2
	if scale == Paper {
		runsPer = 6
	}
	res := Fig11Result{}
	for i, f := range targets {
		for s := 0; s < runsPer; s++ {
			flow.RunObserved(design, flow.Options{
				TargetFreqGHz: f,
				Seed:          seed + int64(i*100+s),
			}, tx)
			res.Runs++
		}
	}
	res.RecordsStored, res.Rejected = srv.Received()

	miner := metrics.Miner{Store: srv.Store}
	res.BestFreqGHz, _ = miner.BestTargetFreq(design.Name)
	res.PrescribedLo, res.PrescribedHi, err = miner.PrescribeFreqRange(design.Name)
	if err != nil {
		return res, err
	}
	res.Suggested = miner.Suggest(design.Name, flow.Options{TargetFreqGHz: fmax * 0.6})
	res.SensFreqArea, err = miner.Sensitivity("synth", "target_freq_ghz", "area")
	if err != nil {
		return res, err
	}
	return res, nil
}

// Print writes the loop summary.
func (r Fig11Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 11: METRICS loop (XML over HTTP, central store, miner)\n")
	fmt.Fprintf(w, "flow runs instrumented:      %d\n", r.Runs)
	fmt.Fprintf(w, "records stored / rejected:   %d / %d\n", r.RecordsStored, r.Rejected)
	fmt.Fprintf(w, "mined best met target:       %.3f GHz\n", r.BestFreqGHz)
	fmt.Fprintf(w, "prescribed achievable range: %.3f - %.3f GHz\n", r.PrescribedLo, r.PrescribedHi)
	fmt.Fprintf(w, "suggested next target:       %.3f GHz\n", r.Suggested.TargetFreqGHz)
	fmt.Fprintf(w, "sensitivity(target->area):   %.3f\n", r.SensFreqArea)
}
