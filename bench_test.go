// Benchmarks regenerating every table and figure in the paper's
// evaluation, one benchmark per artifact, plus ablations of the design
// choices called out in DESIGN.md. Custom metrics carry the
// experiment's headline numbers alongside the runtime measurement.
//
// Run a single experiment at paper scale with, e.g.:
//
//	go test -bench=BenchmarkTable1 -benchtime=1x -scale=paper
package repro

import (
	"flag"
	"testing"

	"repro/internal/correlate"
	"repro/internal/flow"
	"repro/internal/hmm"
	"repro/internal/mdp"
	"repro/internal/place"
	"repro/internal/sta"
)

var scaleFlag = flag.String("scale", "small", `experiment scale: "small" or "paper"`)

func benchScale() Scale {
	if *scaleFlag == "paper" {
		return Paper
	}
	return Small
}

func BenchmarkFig1CapabilityGap(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r := Fig1()
		gap = r.Points[len(r.Points)-1].GapFactor
	}
	b.ReportMetric(gap, "gap2015_x")
}

func BenchmarkFig2DesignCost(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		r := Fig2()
		with = r.WithInnovation[len(r.WithInnovation)-1].DesignCostUSD
		without = r.NoPost2013[len(r.NoPost2013)-1].DesignCostUSD
	}
	b.ReportMetric(with/1e6, "cost2028_DT_$M")
	b.ReportMetric(without/1e9, "cost2028_noDT_$B")
}

func BenchmarkFig3Noise(b *testing.B) {
	var jump, pval float64
	grows := 0.0
	for i := 0; i < b.N; i++ {
		r := Fig3(benchScale(), int64(i))
		jump = r.AreaJumpPct
		pval = r.GaussianPValue
		if r.NoiseGrows {
			grows = 1
		}
	}
	b.ReportMetric(jump, "area_jump_%")
	b.ReportMetric(pval, "jb_pvalue")
	b.ReportMetric(grows, "noise_grows")
}

func BenchmarkFig4Margins(b *testing.B) {
	var dq float64
	for i := 0; i < b.N; i++ {
		rows := Fig4(1.1)
		dq = rows[1].Quality - rows[0].Quality
	}
	b.ReportMetric(dq*100, "quality_gain_pts")
}

func BenchmarkFig5TrajectoryTree(b *testing.B) {
	var size float64
	for i := 0; i < b.N; i++ {
		size = Fig5().SinglePass
	}
	b.ReportMetric(size, "trajectories")
}

func BenchmarkFig6aGWTW(b *testing.B) {
	var g, ind float64
	for i := 0; i < b.N; i++ {
		r := Fig6a(benchScale(), int64(i))
		g, ind = r.GWTWCost, r.IndependentCost
	}
	b.ReportMetric(g, "gwtw_cost")
	b.ReportMetric(ind, "independent_cost")
	if g > 0 {
		b.ReportMetric(ind/g, "gwtw_advantage_x")
	}
}

func BenchmarkFig6bMultistart(b *testing.B) {
	var ad, rnd, corr float64
	for i := 0; i < b.N; i++ {
		r := Fig6b(benchScale(), int64(i))
		ad, rnd, corr = r.AdaptiveBest, r.RandomBest, r.CostDistanceCorr
	}
	b.ReportMetric(ad, "adaptive_hpwl")
	b.ReportMetric(rnd, "random_hpwl")
	b.ReportMetric(corr, "bigvalley_corr")
}

func BenchmarkFig7MAB(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r, err := Fig7(benchScale(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		best = r.Main.BestFreqGHz
	}
	b.ReportMetric(best, "best_feasible_GHz")
}

func BenchmarkFig8Correlation(b *testing.B) {
	var fastAcc, mlAcc, mlCost float64
	for i := 0; i < b.N; i++ {
		r, err := Fig8(benchScale(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			switch p.Name {
			case "fast":
				fastAcc = p.AccuracyPct
			case "fast+ml":
				mlAcc, mlCost = p.AccuracyPct, p.CostUnits
			}
		}
	}
	b.ReportMetric(fastAcc, "fast_acc_%")
	b.ReportMetric(mlAcc, "fast_ml_acc_%")
	b.ReportMetric(mlCost, "fast_ml_cost")
}

func BenchmarkFig9DRV(b *testing.B) {
	var series float64
	for i := 0; i < b.N; i++ {
		r := Fig9(benchScale(), int64(i))
		series = float64(len(r.Series))
	}
	b.ReportMetric(series, "trajectories_found")
}

func BenchmarkFig10StrategyCard(b *testing.B) {
	var stops float64
	for i := 0; i < b.N; i++ {
		r := Fig10(benchScale(), int64(i))
		cfg := r.Card.Config
		stops = 0
		for vb := 0; vb < cfg.ViolBins; vb++ {
			for ds := 0; ds < 2*cfg.DeltaSpan+1; ds++ {
				if r.Card.Action[vb][ds] == mdp.STOP {
					stops++
				}
			}
		}
	}
	b.ReportMetric(stops, "stop_states")
}

func BenchmarkTable1DoomedErrors(b *testing.B) {
	var err1, err3, saved float64
	for i := 0; i < b.N; i++ {
		r := Table1(benchScale(), int64(i))
		err1 = r.Rows[0].Test.TotalErrorPct
		err3 = r.Rows[2].Test.TotalErrorPct
		saved = float64(r.Rows[2].Test.IterationsSaved)
	}
	b.ReportMetric(err1, "test_err_1stop_%")
	b.ReportMetric(err3, "test_err_3stop_%")
	b.ReportMetric(saved, "iters_saved")
}

func BenchmarkFig11Metrics(b *testing.B) {
	var stored float64
	for i := 0; i < b.N; i++ {
		r, err := Fig11(benchScale(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		stored = float64(r.RecordsStored)
	}
	b.ReportMetric(stored, "records")
}

// ---------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md).

// BenchmarkAblationBanditAlgos compares the four bandit policies at
// equal budget (paper: "TS is found to be more robust").
func BenchmarkAblationBanditAlgos(b *testing.B) {
	var ts, sm, eg, ucb AlgoScore
	for i := 0; i < b.N; i++ {
		r, err := Fig7(benchScale(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		ts = r.Comparison["thompson"]
		sm = r.Comparison["softmax"]
		eg = r.Comparison["eps-greedy"]
		ucb = r.Comparison["ucb1"]
	}
	b.ReportMetric(ts.TotalReward, "thompson_reward")
	b.ReportMetric(sm.TotalReward, "softmax_reward")
	b.ReportMetric(eg.TotalReward, "epsgreedy_reward")
	b.ReportMetric(ucb.TotalReward, "ucb1_reward")
	b.ReportMetric(ts.BestFreqGHz, "thompson_GHz")
}

// BenchmarkAblationDetector compares the MDP strategy card against the
// HMM likelihood-ratio detector on the same corpora.
func BenchmarkAblationDetector(b *testing.B) {
	var mdpErr, hmmErr float64
	for i := 0; i < b.N; i++ {
		train, test := Corpora(benchScale(), int64(i))
		card := mdp.BuildCard(train, mdp.CardConfig{})
		mdpErr = card.Evaluate(test, 3).TotalErrorPct
		det := hmm.TrainDetector(train, 3, int64(i))
		hmmErr = det.Evaluate(test, 3).TotalErrorPct
	}
	b.ReportMetric(mdpErr, "mdp_err_%")
	b.ReportMetric(hmmErr, "hmm_err_%")
}

// BenchmarkAblationSTACorrection sweeps engine pairs for the ML
// correction (fast->signoff, GBA->PBA, noSI->SI).
func BenchmarkAblationSTACorrection(b *testing.B) {
	pairs := []struct {
		name     string
		from, to sta.Config
	}{
		{"fast_to_signoff", sta.Config{Engine: sta.Fast}, sta.Config{Engine: sta.Signoff, SI: true, PathBased: true}},
		{"gba_to_pba", sta.Config{Engine: sta.Signoff, SI: true}, sta.Config{Engine: sta.Signoff, SI: true, PathBased: true}},
		{"nosi_to_si", sta.Config{Engine: sta.Signoff}, sta.Config{Engine: sta.Signoff, SI: true}},
	}
	for _, pair := range pairs {
		b.Run(pair.name, func(b *testing.B) {
			var raw, corrected float64
			for i := 0; i < b.N; i++ {
				lib := DefaultLibrary()
				var train []*Design
				for k := 0; k < 3; k++ {
					train = append(train, NewDesign(lib, TinyDesign(int64(i*10+k))))
				}
				test := NewDesign(lib, TinyDesign(int64(i*10+9)))
				m, err := correlate.Train(train, pair.from, pair.to)
				if err != nil {
					b.Fatal(err)
				}
				ev, err := m.Evaluate(test)
				if err != nil {
					b.Fatal(err)
				}
				raw, corrected = ev.RawMAEPs, ev.CorrectedMAEPs
			}
			b.ReportMetric(raw, "raw_mae_ps")
			b.ReportMetric(corrected, "ml_mae_ps")
		})
	}
}

// BenchmarkAblationPartitioning compares flat vs partitioned placement
// (the Fig. 4(b) "many more small subproblems" lever).
func BenchmarkAblationPartitioning(b *testing.B) {
	design := designForScale(benchScale(), 1)
	for _, parts := range []int{1, 2, 4} {
		b.Run(partLabel(parts), func(b *testing.B) {
			var hpwl float64
			var evals float64
			for i := 0; i < b.N; i++ {
				n := design.Clone()
				r := place.Place(n, place.Options{Seed: int64(i), Partitions: parts})
				hpwl = r.HPWLUm
				evals = float64(r.ParallelRuntimeProxy)
			}
			b.ReportMetric(hpwl, "hpwl_um")
			b.ReportMetric(evals, "parallel_tat")
		})
	}
}

func partLabel(p int) string {
	switch p {
	case 1:
		return "flat"
	case 2:
		return "2x2"
	default:
		return "4x4"
	}
}

// BenchmarkAblationGWTW sweeps the GWTW keep fraction.
func BenchmarkAblationGWTW(b *testing.B) {
	// Implemented via Fig6a at different seeds; the keep-fraction sweep
	// exercises gwtw.Config directly in internal tests. Here the
	// headline comparison suffices.
	var adv float64
	for i := 0; i < b.N; i++ {
		r := Fig6a(benchScale(), int64(i))
		if r.GWTWCost > 0 {
			adv = r.IndependentCost / r.GWTWCost
		}
	}
	b.ReportMetric(adv, "advantage_x")
}

// BenchmarkFlowEndToEnd measures the plain SP&R flow run (the atomic
// unit all experiments multiply).
func BenchmarkFlowEndToEnd(b *testing.B) {
	design := designForScale(benchScale(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := flow.Run(design, flow.Options{TargetFreqGHz: 0.4, Seed: int64(i)})
		if res.AreaUm2 <= 0 {
			b.Fatal("flow failed")
		}
	}
}
