#!/bin/sh
# Tier-1 gate for the repository.
#
#   scripts/check.sh          vet + build + race-enabled tests (with a
#                             doubled concurrency tier on the scheduler,
#                             campaign engine, the parallel place &
#                             route kernels, and the speculative flow
#                             path)
#   scripts/check.sh bench    also run the benchmark pairs and write the
#                             speedups to BENCH_campaign.json /
#                             BENCH_sta.json / BENCH_place.json /
#                             BENCH_route.json / BENCH_spec.json, the
#                             live doomed-run abort gate to
#                             BENCH_doomed.json, then print a
#                             consolidated table of every BENCH_*.json
#                             (failing loudly if any expected file is
#                             missing)
#   scripts/check.sh spec     speculation tier: doubled -race over the
#                             flow/spec packages, speculative sweeps
#                             diffed byte-for-byte against the
#                             non-speculative reference at worker counts
#                             1/2/4/8, a kill -9 resume mid-speculation,
#                             and the deterministic doomed -speculate
#                             overlap report (commits > 0, QoR drift 0)
#   scripts/check.sh crash    crash-safety tier: -race over the journal/
#                             watchdog/campaign/flow paths, a fuzz smoke
#                             of the journal decoder, then a real kill -9
#                             soak — journaled sweeps killed at several
#                             points and resumed at worker counts 1 and
#                             8 must reproduce the uninterrupted output
#                             byte-for-byte
#   scripts/check.sh trace    observability demo gate: run a real traced
#                             sweep end to end and validate the Chrome
#                             trace_event JSON with cmd/tracecheck — it
#                             must be non-empty, well-formed, and cover
#                             campaign points, flow stages, and route
#                             iterations (this is `make trace-demo`)
#   scripts/check.sh dist     distributed campaign tier: doubled -race
#                             over the dist/metrics/sched packages,
#                             sharded loopback sweeps at 1/2/4 worker
#                             nodes diffed byte-for-byte against the
#                             single-process reference, a kill -9 of a
#                             campd worker process mid-campaign (the
#                             coordinator must reshard and still emit
#                             the reference bytes), killed deployments
#                             rerun against the store WAL, and the
#                             1-node vs 4-node pulpino throughput pair
#                             written to BENCH_dist.json (gated at
#                             >= 1.8x at an identical qor_hash)
#   scripts/check.sh obs      distributed observability tier: doubled
#                             -race over the trace/dist/warehouse
#                             packages, then a 3-node DistSweep that
#                             must emit ONE stitched Chrome trace
#                             (tracecheck-valid, spans from every node
#                             parented under the coordinator's campaign
#                             span) and a METRICS warehouse whose
#                             canonical dump is byte-identical to the
#                             single-node run's — also under the flaky
#                             chaos profile (retries visible as
#                             dist.rpc spans) and after a kill -9 of
#                             the run writing the warehouse WAL
#   scripts/check.sh chaos    network chaos tier: doubled -race over the
#                             chaos/dist packages, a soak matrix of
#                             every deterministic fault profile (flaky,
#                             slow, partition, kill) x 3 seeds at 3
#                             worker nodes diffed byte-for-byte against
#                             the single-process reference, a WAL
#                             written under chaos replayed by a clean
#                             rerun, and campd store/worker SIGTERM
#                             drain tests (exit 0, clean journal)
#
# BENCH_*.json files are written atomically (temp + rename), so a gate
# failure or a kill mid-write never leaves a torn or half-updated file.
#
# The bench mode runs BenchmarkCampaignSerial (the plain flow.Run loop)
# against BenchmarkCampaignParallel (campaign engine + memo cache), and
# BenchmarkRecoverFull (full sta.Analyze per candidate downsize) against
# BenchmarkRecoverIncremental (sta.Incremental dirty-frontier engine) on
# identical workloads, emitting machine-readable lines:
#
#   campaign_speedup_x=<serial ns/op divided by parallel ns/op>
#   trace_overhead_pct=<traced vs untraced parallel campaign, percent>
#   sta_recover_speedup_x=<full ns/op divided by incremental ns/op>
#   place_speedup_x=<speculative annealer, 1 worker vs 20-worker gang>
#   route_speedup_x=<sharded router, 1 worker vs all-regions-in-flight>
#
# The place and route pairs run the SAME parallel kernel at worker count
# 1 (the serial reference) and at full fan-out; both kernels are
# worker-invariant by construction, so the gates demand byte-identical
# QoR metrics (hpwl/accepted/conflicted for place, wirelength/overflow/
# drv_sum for route) alongside a >= 2x min-of-3 speedup.
#
# The sta pair is gated: the incremental engine must be >= 10x faster at
# pulpino-proxy scale AND land on the identical final area/WNS. The
# tracing pair is gated too: BenchmarkCampaignTraced (tracer armed, every
# point/stage/iteration emitting spans) may be at most 5% slower than the
# untraced BenchmarkCampaignParallel — best of five interleaved A/B
# pairs, because full observability must stay in the noise — and
# BenchmarkCampaignWarehoused (a warehouse emitter recording every flow
# stage as a METRICS record) carries the same 5% bar. (Tracing *off* costs
# one nil-check per span site; BenchmarkSpanDisabled in internal/trace
# pins that at ~3ns and 0 allocs.)
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
# Concurrency tier: the license pool, gang scheduler and campaign
# engine carry the cancellation/retry machinery every experiment fans
# out on, the tracer/metrics server are written to by every one of
# those goroutines at once, the place/route kernels run speculative
# batches and sharded regions on the gang, and the flow/spec pair runs
# whole speculative stage chains concurrently with the real stages; run
# their race tests twice (fresh caches each time) before the full
# suite; the dist service rides along because its store, claims, and
# coordinator queues are hammered by every worker node at once.
go test -race -count=2 ./internal/sched/... ./internal/campaign/... \
    ./internal/trace/... ./internal/metrics/... \
    ./internal/place/... ./internal/route/... \
    ./internal/flow/... ./internal/spec/... ./internal/dist/...
go test -race ./...

if [ "${1:-}" = "bench" ]; then
    out=$(go test -run=NONE -bench='BenchmarkCampaign(Serial|Parallel)$' -benchtime=3x .)
    echo "$out"
    # Tracing overhead: five interleaved A/B invocations, each running
    # the untraced and traced benchmark seconds apart, gated on the
    # MINIMUM per-pair ratio. Scheduler noise on this workload is ±10%
    # while real tracing overhead is ~1%, and noise can only inflate a
    # ratio — so the best pair is the tightest upper bound on the true
    # overhead, and a genuine regression (say a 10% cost per span batch)
    # still shows up in every pair. (-count=5 would run five untraced
    # then five traced ~30s later, and machine drift across that window
    # lands entirely on the "overhead".)
    tout=""
    for _ in 1 2 3 4 5; do
        tout="$tout
$(go test -run=NONE -bench='BenchmarkCampaign(Parallel|Traced|Warehoused)$' -benchtime=1s .)"
    done
    echo "$tout"
    { echo "$out"; echo "===TRACED==="; echo "$tout"; } | awk '
        /^===TRACED===$/ { traced_section = 1; next }
        !traced_section && /BenchmarkCampaignSerial/   { serial = $3 }
        !traced_section && /BenchmarkCampaignParallel/ { parallel = $3
            for (i = 1; i <= NF; i++) {
                if ($i == "cache_hit_rate") hit = $(i-1)
                if ($i == "qor_area_sum")   qor = $(i-1)
            }
        }
        traced_section && /BenchmarkCampaignParallel/ { pcur = $3 + 0 }
        traced_section && /BenchmarkCampaignTraced/ {
            if (pcur > 0) {
                ratio = ($3 + 0) / pcur
                if (best == "" || ratio < best) { best = ratio; tmin = $3 + 0 }
            }
            for (i = 1; i <= NF; i++) if ($i == "spans") spans = $(i-1)
        }
        traced_section && /BenchmarkCampaignWarehoused/ {
            if (pcur > 0) {
                ratio = ($3 + 0) / pcur
                if (wbest == "" || ratio < wbest) { wbest = ratio; wmin = $3 + 0 }
            }
            pcur = 0
        }
        END {
            if (serial == "" || parallel == "" || parallel == 0 || best == "" || wbest == "") {
                print "check.sh: could not parse benchmark output" > "/dev/stderr"
                exit 1
            }
            speedup = serial / parallel
            overhead = (best - 1) * 100
            woverhead = (wbest - 1) * 100
            printf "campaign_speedup_x=%.2f\n", speedup
            printf "trace_overhead_pct=%.2f\n", overhead
            printf "warehouse_overhead_pct=%.2f\n", woverhead
            printf "{\"benchmark\":\"campaign\",\"serial_ns_per_op\":%s,\"parallel_ns_per_op\":%s,\"speedup_x\":%.2f,\"cache_hit_rate\":%s,\"qor_area_sum\":%s,\"traced_ns_per_op\":%.0f,\"trace_overhead_pct\":%.2f,\"spans_per_op\":%s,\"warehoused_ns_per_op\":%.0f,\"warehouse_overhead_pct\":%.2f}\n", \
                serial, parallel, speedup, hit, qor, tmin, overhead, spans, wmin, woverhead > "BENCH_campaign.json.tmp"
            if (overhead > 5) {
                printf "check.sh: tracing overhead %.2f%% above 5%% gate\n", overhead > "/dev/stderr"
                exit 1
            }
            if (woverhead > 5) {
                printf "check.sh: warehouse overhead %.2f%% above 5%% gate\n", woverhead > "/dev/stderr"
                exit 1
            }
        }'
    mv BENCH_campaign.json.tmp BENCH_campaign.json

    out=$(go test -run=NONE -bench='BenchmarkRecover(Full|Incremental)$' -benchtime=1x ./internal/sizing/)
    echo "$out"
    echo "$out" | awk '
        function metric(name,   i) {
            for (i = 1; i <= NF; i++) if ($i == name) return $(i-1)
            return ""
        }
        /BenchmarkRecoverFull/ {
            full = $3; full_area = metric("area_um2"); full_wns = metric("wns_ps")
        }
        /BenchmarkRecoverIncremental/ {
            incr = $3; incr_area = metric("area_um2"); incr_wns = metric("wns_ps")
        }
        END {
            if (full == "" || incr == "" || incr == 0) {
                print "check.sh: could not parse sta benchmark output" > "/dev/stderr"
                exit 1
            }
            speedup = full / incr
            printf "sta_recover_speedup_x=%.2f\n", speedup
            printf "{\"benchmark\":\"sta_recover\",\"full_ns_per_op\":%s,\"incremental_ns_per_op\":%s,\"speedup_x\":%.2f,\"area_um2\":%s,\"wns_ps\":%s}\n", \
                full, incr, speedup, incr_area, incr_wns > "BENCH_sta.json.tmp"
            if (full_area != incr_area || full_wns != incr_wns) {
                printf "check.sh: full/incremental QoR mismatch: area %s vs %s, wns %s vs %s\n", \
                    full_area, incr_area, full_wns, incr_wns > "/dev/stderr"
                exit 1
            }
            if (speedup < 10) {
                printf "check.sh: sta recover speedup %.2fx below 10x gate\n", speedup > "/dev/stderr"
                exit 1
            }
        }'
    mv BENCH_sta.json.tmp BENCH_sta.json

    # Live doomed-run abort gate: supervised execution of the Fig. 9
    # test corpus must reclaim >= 20% of detail-route iterations while
    # every run the card lets finish stays bit-identical to the
    # uninterrupted baseline (qor_mismatches must be 0).
    out=$(go run ./cmd/doomed -doomed-live -seed 1 -scale small)
    echo "$out"
    echo "$out" | awk -F= '
        /^doomed_live_baseline_iters=/      { base = $2 }
        /^doomed_live_saved_iters=/         { saved = $2 }
        /^doomed_live_saved_pct=/           { pct = $2 }
        /^doomed_live_posthoc_saved_iters=/ { posthoc = $2 }
        /^doomed_live_qor_mismatches=/      { mism = $2 }
        /^doomed_live_error_pct=/           { err = $2 }
        END {
            if (base == "" || pct == "" || mism == "") {
                print "check.sh: could not parse doomed-live output" > "/dev/stderr"
                exit 1
            }
            printf "doomed_live_reclaimed_pct=%s\n", pct
            printf "{\"benchmark\":\"doomed_live\",\"baseline_iters\":%s,\"saved_iters\":%s,\"saved_pct\":%s,\"posthoc_saved_iters\":%s,\"qor_mismatches\":%s,\"error_pct\":%s}\n", \
                base, saved, pct, posthoc, mism, err > "BENCH_doomed.json.tmp"
            if (mism + 0 != 0) {
                printf "check.sh: doomed-live QoR drift on %s finished runs\n", mism > "/dev/stderr"
                exit 1
            }
            if (pct + 0 < 20) {
                printf "check.sh: doomed-live reclaimed %s%% below 20%% gate\n", pct > "/dev/stderr"
                exit 1
            }
        }'
    mv BENCH_doomed.json.tmp BENCH_doomed.json

    # Parallel placement gate: the speculative annealer at 1 worker vs
    # the full gang, min-of-3 (single runs drift on a shared machine).
    # Worker invariance means the QoR metrics must match byte-for-byte.
    out=$(go test -run=NONE -bench='BenchmarkPlace(Serial|Parallel)$' \
        -benchtime=2x -count=3 ./internal/place/)
    echo "$out"
    echo "$out" | awk '
        function metric(name,   i) {
            for (i = 1; i <= NF; i++) if ($i == name) return $(i-1)
            return ""
        }
        /BenchmarkPlaceSerial/ {
            if (smin == "" || $3 + 0 < smin) smin = $3 + 0
            s_hpwl = metric("hpwl"); s_acc = metric("accepted")
            s_conf = metric("conflicted"); s_bf = metric("batch_final")
        }
        /BenchmarkPlaceParallel/ {
            if (pmin == "" || $3 + 0 < pmin) pmin = $3 + 0
            p_hpwl = metric("hpwl"); p_acc = metric("accepted")
            p_conf = metric("conflicted"); p_bf = metric("batch_final")
            p_apc = metric("accept_per_conflict")
        }
        END {
            if (smin == "" || pmin == "" || pmin == 0) {
                print "check.sh: could not parse place benchmark output" > "/dev/stderr"
                exit 1
            }
            speedup = smin / pmin
            printf "place_speedup_x=%.2f\n", speedup
            printf "{\"benchmark\":\"place\",\"serial_ns_per_op\":%.0f,\"parallel_ns_per_op\":%.0f,\"speedup_x\":%.2f,\"hpwl_um\":%s,\"moves_accepted\":%s,\"moves_conflicted\":%s,\"accept_per_conflict\":%s,\"batch_final\":%s}\n", \
                smin, pmin, speedup, p_hpwl, p_acc, p_conf, p_apc, p_bf > "BENCH_place.json.tmp"
            if (s_hpwl != p_hpwl || s_acc != p_acc || s_conf != p_conf || s_bf != p_bf) {
                printf "check.sh: place serial/parallel QoR mismatch: hpwl %s vs %s, accepted %s vs %s, conflicted %s vs %s, batch_final %s vs %s\n", \
                    s_hpwl, p_hpwl, s_acc, p_acc, s_conf, p_conf, s_bf, p_bf > "/dev/stderr"
                exit 1
            }
            if (speedup < 2) {
                printf "check.sh: place speedup %.2fx below 2x gate\n", speedup > "/dev/stderr"
                exit 1
            }
        }'
    mv BENCH_place.json.tmp BENCH_place.json

    # Sharded routing gate: same shape — the region-sharded router at 1
    # worker vs every region in flight, byte-identical congestion
    # picture and detail-route DRV checksum.
    out=$(go test -run=NONE -bench='BenchmarkRoute(Serial|Sharded)$' \
        -benchtime=2x -count=3 ./internal/route/)
    echo "$out"
    echo "$out" | awk '
        function metric(name,   i) {
            for (i = 1; i <= NF; i++) if ($i == name) return $(i-1)
            return ""
        }
        /BenchmarkRouteSerial/ {
            if (smin == "" || $3 + 0 < smin) smin = $3 + 0
            s_wl = metric("wirelength"); s_of = metric("overflow")
            s_drv = metric("drv_sum")
        }
        /BenchmarkRouteSharded/ {
            if (pmin == "" || $3 + 0 < pmin) pmin = $3 + 0
            p_wl = metric("wirelength"); p_of = metric("overflow")
            p_drv = metric("drv_sum")
        }
        END {
            if (smin == "" || pmin == "" || pmin == 0) {
                print "check.sh: could not parse route benchmark output" > "/dev/stderr"
                exit 1
            }
            speedup = smin / pmin
            printf "route_speedup_x=%.2f\n", speedup
            printf "{\"benchmark\":\"route\",\"serial_ns_per_op\":%.0f,\"sharded_ns_per_op\":%.0f,\"speedup_x\":%.2f,\"wirelength_um\":%s,\"overflow_total\":%s,\"drv_sum\":%s}\n", \
                smin, pmin, speedup, p_wl, p_of, p_drv > "BENCH_route.json.tmp"
            if (s_wl != p_wl || s_of != p_of || s_drv != p_drv) {
                printf "check.sh: route serial/sharded QoR mismatch: wirelength %s vs %s, overflow %s vs %s, drv_sum %s vs %s\n", \
                    s_wl, p_wl, s_of, p_of, s_drv, p_drv > "/dev/stderr"
                exit 1
            }
            if (speedup < 2) {
                printf "check.sh: route speedup %.2fx below 2x gate\n", speedup > "/dev/stderr"
                exit 1
            }
        }'
    mv BENCH_route.json.tmp BENCH_route.json

    # Speculative stage-overlap gate, min-of-3 on both pairs. The sweep
    # pair runs the downstream-knob sweep speculation exists for, at one
    # campaign license, so all reclaimed wall-clock is stage overlap; it
    # must reclaim >= 20% at an identical qor_hash. The miss pair runs
    # an always-wrong oracle over an upstream-varying sweep — every
    # chain launches, burns, and is reaped — and must cost <= 5% over
    # its non-speculative reference, again at an identical qor_hash.
    out=$(go test -run=NONE -bench='BenchmarkSpec(SweepBase|SweepOverlap|MissBase|MissSpec)$' \
        -benchtime=1x -count=3 ./internal/spec/)
    echo "$out"
    echo "$out" | awk '
        function metric(name,   i) {
            for (i = 1; i <= NF; i++) if ($i == name) return $(i-1)
            return ""
        }
        /BenchmarkSpecSweepBase/ {
            if (sb == "" || $3 + 0 < sb) sb = $3 + 0
            sb_qor = metric("qor_hash")
        }
        /BenchmarkSpecSweepOverlap/ {
            if (so == "" || $3 + 0 < so) so = $3 + 0
            so_qor = metric("qor_hash")
        }
        /BenchmarkSpecMissBase/ {
            if (mb == "" || $3 + 0 < mb) mb = $3 + 0
            mb_qor = metric("qor_hash")
        }
        /BenchmarkSpecMissSpec/ {
            if (ms == "" || $3 + 0 < ms) ms = $3 + 0
            ms_qor = metric("qor_hash")
        }
        END {
            if (sb == "" || so == "" || so == 0 || mb == "" || mb == 0 || ms == "") {
                print "check.sh: could not parse spec benchmark output" > "/dev/stderr"
                exit 1
            }
            reclaimed = (1 - so / sb) * 100
            overhead = (ms / mb - 1) * 100
            printf "spec_reclaimed_pct=%.1f\n", reclaimed
            printf "spec_miss_overhead_pct=%.1f\n", overhead
            printf "{\"benchmark\":\"spec\",\"sweep_base_ns_per_op\":%.0f,\"sweep_overlap_ns_per_op\":%.0f,\"reclaimed_pct\":%.1f,\"miss_base_ns_per_op\":%.0f,\"miss_spec_ns_per_op\":%.0f,\"miss_overhead_pct\":%.1f,\"sweep_qor_hash\":%s,\"miss_qor_hash\":%s}\n", \
                sb, so, reclaimed, mb, ms, overhead, so_qor, ms_qor > "BENCH_spec.json.tmp"
            if (sb_qor != so_qor) {
                printf "check.sh: speculative sweep QoR drift: qor_hash %s vs %s\n", \
                    sb_qor, so_qor > "/dev/stderr"
                exit 1
            }
            if (mb_qor != ms_qor) {
                printf "check.sh: all-miss speculation QoR drift: qor_hash %s vs %s\n", \
                    mb_qor, ms_qor > "/dev/stderr"
                exit 1
            }
            if (reclaimed < 20) {
                printf "check.sh: speculation reclaimed %.1f%% below 20%% gate\n", reclaimed > "/dev/stderr"
                exit 1
            }
            if (overhead > 5) {
                printf "check.sh: all-miss speculation overhead %.1f%% above 5%% gate\n", overhead > "/dev/stderr"
                exit 1
            }
        }'
    mv BENCH_spec.json.tmp BENCH_spec.json

    # Consolidated bench table: every gate above must have written its
    # file. A missing file means a gate silently did not run — fail
    # loudly rather than report a partial picture.
    echo "=== bench summary ==="
    missing=0
    for f in BENCH_campaign.json BENCH_sta.json BENCH_doomed.json \
             BENCH_place.json BENCH_route.json BENCH_spec.json; do
        if [ ! -f "$f" ]; then
            echo "check.sh: expected bench file $f is missing" >&2
            missing=1
            continue
        fi
        printf '%s\n' "$f"
        sed 's/^/    /' "$f"
    done
    if [ "$missing" -ne 0 ]; then
        exit 1
    fi
fi

if [ "${1:-}" = "crash" ]; then
    # Crash-safety tier.
    #
    # 1. Race-enabled tests over the durability substrate: the journal,
    #    the watchdog, and the campaign/flow paths that append to and
    #    replay from it.
    go test -race ./internal/journal/... ./internal/sched/... \
        ./internal/campaign/... ./internal/flow/... ./internal/logfile/...

    # 2. Fuzz smoke of the journal decoder: no input may crash it or
    #    make recovery report success on a corrupt record.
    go test -run=NONE -fuzz='FuzzJournalDecode' -fuzztime=10s ./internal/journal/

    # 3. Real kill -9 soak. A journaled sweep is killed at several
    #    points in its life, then resumed; the resumed output must be
    #    byte-identical to an uninterrupted reference sweep. One killed
    #    journal is additionally resumed at worker counts 1 and 8 to
    #    prove worker count never changes results.
    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    go build -o "$work/sprflow" ./cmd/sprflow

    sweep_flags="-design tiny -sweep 4 -parallel 4"
    "$work/sprflow" $sweep_flags > "$work/ref.out"

    kept=""
    for delay in 0.05 0.15 0.3 0.45 0.6 0.9; do
        jdir="$work/j$delay"
        "$work/sprflow" $sweep_flags -journal "$jdir" \
            > "$work/killed.out" 2> "$work/killed.err" &
        pid=$!
        sleep "$delay"
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true

        # Snapshot the as-killed journal (possibly torn) before resume
        # heals it, so the worker-count check below resumes the same
        # partial journal the kill left behind.
        cp -r "$jdir" "$work/snap"

        "$work/sprflow" $sweep_flags -journal "$jdir" -resume \
            > "$work/resumed.out" 2> "$work/resumed.err"
        if ! diff -u "$work/ref.out" "$work/resumed.out"; then
            echo "check.sh: resumed sweep (killed at ${delay}s) differs from reference" >&2
            exit 1
        fi
        # Remember one journal that was killed mid-flight (some points
        # durable, some not) for the worker-count invariance check.
        if [ -z "$kept" ] && grep -q 'replayed=[1-9]' "$work/resumed.err"; then
            kept="$work/kept"
            mv "$work/snap" "$kept"
        else
            rm -rf "$work/snap"
        fi
        rm -rf "$jdir"
    done

    if [ -n "$kept" ]; then
        for workers in 1 8; do
            jdir="$work/kept-w$workers"
            cp -r "$kept" "$jdir"
            "$work/sprflow" -design tiny -sweep 4 -parallel "$workers" \
                -journal "$jdir" -resume \
                > "$work/w$workers.out" 2> "$work/w$workers.err"
            if ! diff -u "$work/ref.out" "$work/w$workers.out"; then
                echo "check.sh: resume at $workers workers differs from reference" >&2
                exit 1
            fi
        done
    else
        echo "check.sh: no mid-flight journal captured for worker sweep (machine too fast/slow?)" >&2
    fi
    echo "crash_soak=ok"
fi

if [ "${1:-}" = "trace" ]; then
    # Observability demo gate: a real traced sweep must produce a
    # non-empty, well-formed Chrome trace covering the whole stack.
    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    go run ./cmd/sprflow -design tiny -sweep 2 -parallel 2 \
        -place-workers 2 -route-tiles 2 \
        -trace "$work/trace.json" > /dev/null
    go run ./cmd/tracecheck \
        -require 'campaign.run,campaign.point,flow.run,flow.synth,flow.droute,route.iter,sched.wait,place.move,route.tile' \
        "$work/trace.json"
    echo "trace_demo=ok"
fi

if [ "${1:-}" = "spec" ]; then
    # Speculation tier.
    #
    # 1. Doubled race tests over the speculative flow path: real and
    #    speculative stage chains share netlist clones, slots, and the
    #    oracle concurrently.
    go test -race -count=2 ./internal/flow/... ./internal/spec/...

    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    go build -o "$work/sprflow" ./cmd/sprflow

    # 2. End-to-end determinism: a speculative sweep's stdout must be
    #    byte-identical to the non-speculative reference at every worker
    #    count — whichever speculations hit or miss, commit decisions
    #    are pure functions of (prediction, real result).
    sweep_flags="-design tiny -sweep 4"
    "$work/sprflow" $sweep_flags -parallel 4 > "$work/ref.out"
    for workers in 1 2 4 8; do
        "$work/sprflow" $sweep_flags -parallel "$workers" -speculate \
            > "$work/spec-w$workers.out" 2> "$work/spec-w$workers.err"
        if ! diff -u "$work/ref.out" "$work/spec-w$workers.out"; then
            echo "check.sh: speculative sweep at $workers workers differs from reference" >&2
            exit 1
        fi
    done
    # The oracle must actually have been consulted: at 1 worker the
    # sweep warms the artifact memory point by point, so later points
    # are offered predictions (hits or misses — either proves life).
    if ! grep -Eq '^predict\.(synth|place)\.(hit|miss) [1-9]' "$work/spec-w1.err"; then
        echo "check.sh: speculative sweep consulted no predictions" >&2
        cat "$work/spec-w1.err" >&2
        exit 1
    fi

    # 3. kill -9 mid-speculation: resume the journaled speculative
    #    sweep; its output must still match the non-speculative,
    #    uninterrupted reference byte-for-byte.
    jdir="$work/j"
    "$work/sprflow" $sweep_flags -parallel 4 -speculate -journal "$jdir" \
        > /dev/null 2>&1 &
    pid=$!
    sleep 0.3
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    "$work/sprflow" $sweep_flags -parallel 4 -speculate -journal "$jdir" -resume \
        > "$work/resumed.out" 2> /dev/null
    if ! diff -u "$work/ref.out" "$work/resumed.out"; then
        echo "check.sh: resumed speculative sweep differs from reference" >&2
        exit 1
    fi

    # 4. Deterministic overlap accounting through the doomed CLI:
    #    speculation must commit downstream stages and must never drift
    #    QoR from the non-speculative reference.
    out=$(go run ./cmd/doomed -speculate -seed 1 -scale small)
    echo "$out"
    echo "$out" | awk -F= '
        /^spec_overlap_committed=/      { committed = $2 }
        /^spec_overlap_qor_mismatches=/ { mism = $2 }
        END {
            if (committed == "" || mism == "") {
                print "check.sh: could not parse spec-overlap output" > "/dev/stderr"
                exit 1
            }
            if (committed + 0 < 1) {
                print "check.sh: speculation committed no stages" > "/dev/stderr"
                exit 1
            }
            if (mism + 0 != 0) {
                printf "check.sh: speculation drifted QoR on %s points\n", mism > "/dev/stderr"
                exit 1
            }
        }'
    echo "spec_gate=ok"
fi

if [ "${1:-}" = "dist" ]; then
    # Distributed campaign tier.
    #
    # 1. Doubled race tests over the service: the store's claims and
    #    WAL, the ring, coordinator dispatch/steal/reassign, the worker
    #    engine, the slot ledger, and the front door campaigns are
    #    submitted through.
    go test -race -count=2 ./internal/dist/... ./internal/metrics/... \
        ./internal/sched/...

    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    go build -o "$work/sprflow" ./cmd/sprflow
    go build -o "$work/campd" ./cmd/campd

    # 2. Byte-identity across node counts: the sharded service's stdout
    #    must equal the single-process sweep's at 1, 2, and 4 loopback
    #    worker nodes.
    sweep_flags="-design tiny -sweep 4 -parallel 2"
    "$work/sprflow" $sweep_flags > "$work/ref.out"
    for nodes in 1 2 4; do
        "$work/sprflow" $sweep_flags -dist-nodes "$nodes" > "$work/dist.out"
        if ! diff -u "$work/ref.out" "$work/dist.out"; then
            echo "check.sh: dist sweep at $nodes nodes differs from single-process reference" >&2
            exit 1
        fi
    done

    # 3. kill -9 a worker *process* mid-campaign, in a real multi-process
    #    campd deployment (store + two workers + coordinator over
    #    loopback HTTP). The coordinator must revoke the dead node's
    #    store claims, reshard its points onto the survivor, and still
    #    emit the single-process reference bytes.
    shape="-design pulpino -freq 0.5 -seed 1 -effort 2 -sweep 4"
    "$work/sprflow" $shape -parallel 1 > "$work/pref.out"

    # campd binds port 0 and prints the bound address; poll it out of
    # the process's stdout file.
    wait_addr() {
        i=0
        while [ "$i" -lt 100 ]; do
            a=$(sed -n "s/^campd $1 listening on \([^ ]*\).*/\1/p" "$2")
            if [ -n "$a" ]; then printf '%s' "$a"; return 0; fi
            i=$((i+1)); sleep 0.05
        done
        echo "check.sh: $1 never reported its address" >&2
        return 1
    }

    "$work/campd" -mode store -addr 127.0.0.1:0 \
        > "$work/store.out" 2> /dev/null &
    store_pid=$!
    saddr=$(wait_addr store "$work/store.out")
    for wid in w0 w1; do
        "$work/campd" -mode worker -id "$wid" -addr 127.0.0.1:0 \
            -store-url "http://$saddr" $shape -parallel 1 \
            > "$work/$wid.out" 2> /dev/null &
        eval "${wid}_pid=\$!"
    done
    w0addr=$(wait_addr "worker w0" "$work/w0.out")
    w1addr=$(wait_addr "worker w1" "$work/w1.out")
    "$work/campd" -mode coord -store-url "http://$saddr" \
        -nodes "w0=http://$w0addr,w1=http://$w1addr" $shape -parallel 1 \
        > "$work/coord.out" 2> "$work/coord.err" &
    coord_pid=$!
    sleep 0.4
    kill -9 "$w0_pid" 2>/dev/null || true
    wait "$coord_pid"
    kill "$w1_pid" "$store_pid" 2>/dev/null || true
    wait "$w1_pid" "$store_pid" 2>/dev/null || true
    if ! diff -u "$work/pref.out" "$work/coord.out"; then
        echo "check.sh: campaign with a worker killed -9 differs from reference" >&2
        exit 1
    fi
    cat "$work/coord.err"
    if ! grep -q '[1-9][0-9]* node deaths' "$work/coord.err"; then
        echo "check.sh: worker kill -9 landed outside the campaign window (machine too fast/slow?)" >&2
    fi

    # 4. kill -9 the whole sharded deployment mid-campaign, then rerun
    #    it against the same store WAL: recovered points are served from
    #    the store, only the lost ones recompute, and stdout must still
    #    be byte-identical to the uninterrupted reference.
    recovered=""
    for delay in 0.25 0.4 0.6; do
        jdir="$work/dwal$delay"
        "$work/sprflow" $shape -parallel 1 -dist-nodes 2 -journal "$jdir" \
            > /dev/null 2>&1 &
        pid=$!
        sleep "$delay"
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
        "$work/sprflow" $shape -parallel 1 -dist-nodes 2 -journal "$jdir" \
            > "$work/rerun.out" 2> "$work/rerun.err"
        if ! diff -u "$work/pref.out" "$work/rerun.out"; then
            echo "check.sh: rerun against the store WAL (killed at ${delay}s) differs from reference" >&2
            exit 1
        fi
        if grep -q 'replayed=[1-9]' "$work/rerun.err"; then
            recovered=1
        fi
    done
    if [ -z "$recovered" ]; then
        echo "check.sh: no kill left a recoverable store WAL (machine too fast/slow?)" >&2
    fi

    # 5. Throughput gate: the pulpino-proxy sweep through the full
    #    service at one loopback worker node vs four, min-of-3, at an
    #    identical qor_hash. Four nodes must clear 1.8x.
    out=$(go test -run=NONE -bench='BenchmarkDistSweep(1|4)$' \
        -benchtime=1x -count=3 .)
    echo "$out"
    echo "$out" | awk '
        function metric(name,   i) {
            for (i = 1; i <= NF; i++) if ($i == name) return $(i-1)
            return ""
        }
        /BenchmarkDistSweep1/ {
            if (n1 == "" || $3 + 0 < n1) n1 = $3 + 0
            q1 = metric("qor_hash")
        }
        /BenchmarkDistSweep4/ {
            if (n4 == "" || $3 + 0 < n4) n4 = $3 + 0
            q4 = metric("qor_hash")
        }
        END {
            if (n1 == "" || n4 == "" || n4 == 0) {
                print "check.sh: could not parse dist benchmark output" > "/dev/stderr"
                exit 1
            }
            speedup = n1 / n4
            printf "dist_speedup_x=%.2f\n", speedup
            printf "{\"benchmark\":\"dist\",\"one_node_ns_per_op\":%.0f,\"four_node_ns_per_op\":%.0f,\"speedup_x\":%.2f,\"qor_hash\":%s}\n", \
                n1, n4, speedup, q4 > "BENCH_dist.json.tmp"
            if (q1 != q4) {
                printf "check.sh: 1-node/4-node QoR mismatch: qor_hash %s vs %s\n", \
                    q1, q4 > "/dev/stderr"
                exit 1
            }
            if (speedup < 1.8) {
                printf "check.sh: dist speedup %.2fx below 1.8x gate\n", speedup > "/dev/stderr"
                exit 1
            }
        }'
    mv BENCH_dist.json.tmp BENCH_dist.json
    echo "dist_gate=ok"
fi

if [ "${1:-}" = "chaos" ]; then
    # Network chaos tier: the distributed service under deterministic
    # fault injection. The contract is the hard one from the failure
    # model: with at least one live node, any fault schedule — dropped
    # responses, injected 5xx, stalls, duplicated deliveries, scheduled
    # partitions, a permanently killed worker — must still produce
    # stdout byte-identical to the single-process sweep.
    #
    # 1. Doubled race tests over the chaos engine and the hardened
    #    dist layer (RPC retries, membership, worker degrade/backfill,
    #    graceful shutdown, goroutine-leak check).
    go test -race -count=2 ./internal/chaos/... ./internal/dist/...

    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    go build -o "$work/sprflow" ./cmd/sprflow
    go build -o "$work/campd" ./cmd/campd

    # 2. Soak matrix: every chaos profile x several seeds, 3 worker
    #    nodes, diffed byte-for-byte against the single-process
    #    reference. The partition profile runs a longer sweep so the
    #    campaign is still in flight when the 400ms heal window opens
    #    and the dead node can rejoin mid-run.
    sweep3="-design tiny -sweep 3 -parallel 2"
    sweep10="-design tiny -sweep 10 -parallel 2"
    "$work/sprflow" $sweep3 > "$work/ref3.out"
    "$work/sprflow" $sweep10 > "$work/ref10.out"
    rejoined=""
    for profile in flaky slow partition kill; do
        case "$profile" in
            partition) flags=$sweep10; ref="$work/ref10.out" ;;
            *)         flags=$sweep3;  ref="$work/ref3.out" ;;
        esac
        for seed in 1 2 3; do
            "$work/sprflow" $flags -dist-nodes 3 \
                -chaos-profile "$profile" -chaos-seed "$seed" \
                > "$work/chaos.out" 2> "$work/chaos.err"
            if ! diff -u "$ref" "$work/chaos.out"; then
                echo "check.sh: chaos profile=$profile seed=$seed differs from single-process reference" >&2
                cat "$work/chaos.err" >&2
                exit 1
            fi
            if ! grep -q 'chaos\.fault\.injected' "$work/chaos.err"; then
                echo "check.sh: chaos profile=$profile seed=$seed injected no faults" >&2
                exit 1
            fi
            if grep -q 'rejoined=[1-9]' "$work/chaos.err"; then
                rejoined=1
            fi
        done
        echo "chaos_profile_${profile}=ok"
    done
    if [ -z "$rejoined" ]; then
        # Rejoin timing rides wall-clock probe cadence; the hard
        # guarantee lives in TestSuspectDeadRejoinServesPoints.
        echo "check.sh: no soak run saw a node rejoin (machine too fast/slow?)" >&2
    fi

    # 3. Durability under chaos: a flaky-profile sweep writing the
    #    store WAL, then a clean (no-chaos) rerun against the same WAL
    #    must replay finished points and emit the reference bytes.
    "$work/sprflow" $sweep3 -dist-nodes 3 -journal "$work/cwal" \
        -chaos-profile flaky -chaos-seed 1 > /dev/null 2>&1
    "$work/sprflow" $sweep3 -dist-nodes 2 -journal "$work/cwal" \
        > "$work/rerun.out" 2> "$work/rerun.err"
    if ! diff -u "$work/ref3.out" "$work/rerun.out"; then
        echo "check.sh: rerun against a WAL written under chaos differs from reference" >&2
        exit 1
    fi
    if ! grep -q 'replayed=[1-9]' "$work/rerun.err"; then
        echo "check.sh: WAL written under chaos replayed nothing" >&2
        exit 1
    fi

    # 4. Graceful SIGTERM: a campd store (with WAL) and worker must
    #    drain and exit 0 on SIGTERM — the orchestrator default — and
    #    the store's journal must come back clean afterwards.
    wait_addr() {
        i=0
        while [ "$i" -lt 100 ]; do
            a=$(sed -n "s/^campd $1 listening on \([^ ]*\).*/\1/p" "$2")
            if [ -n "$a" ]; then printf '%s' "$a"; return 0; fi
            i=$((i+1)); sleep 0.05
        done
        echo "check.sh: $1 never reported its address" >&2
        return 1
    }
    "$work/campd" -mode store -addr 127.0.0.1:0 -journal "$work/gwal" \
        > "$work/gstore.out" 2> "$work/gstore.err" &
    store_pid=$!
    saddr=$(wait_addr store "$work/gstore.out")
    "$work/campd" -mode worker -id w0 -addr 127.0.0.1:0 \
        -store-url "http://$saddr" -design tiny -sweep 2 -parallel 1 \
        > "$work/gw0.out" 2> "$work/gw0.err" &
    w0_pid=$!
    wait_addr "worker w0" "$work/gw0.out" > /dev/null
    kill -TERM "$w0_pid"
    if wait "$w0_pid"; then :; else
        echo "check.sh: campd worker exited non-zero ($?) on SIGTERM" >&2
        exit 1
    fi
    grep -q 'points completed' "$work/gw0.err" || {
        echo "check.sh: campd worker skipped its drain path on SIGTERM" >&2
        exit 1
    }
    kill -TERM "$store_pid"
    if wait "$store_pid"; then :; else
        echo "check.sh: campd store exited non-zero ($?) on SIGTERM" >&2
        exit 1
    fi
    grep -q 'claims outstanding' "$work/gstore.err" || {
        echo "check.sh: campd store skipped its drain path on SIGTERM" >&2
        exit 1
    }
    "$work/campd" -mode store -addr 127.0.0.1:0 -journal "$work/gwal" \
        > "$work/gstore2.out" 2> "$work/gstore2.err" &
    store_pid=$!
    wait_addr store "$work/gstore2.out" > /dev/null
    kill -TERM "$store_pid"
    wait "$store_pid" || true
    grep -q '(0 corrupt)' "$work/gstore2.err" || {
        echo "check.sh: store WAL corrupt after graceful SIGTERM" >&2
        cat "$work/gstore2.err" >&2
        exit 1
    }
    echo "chaos_gate=ok"
fi

if [ "${1:-}" = "obs" ]; then
    # Distributed observability tier: every run queryable, every node's
    # spans in one stitched trace.
    #
    # 1. Doubled race tests over the tracing substrate (collector,
    #    shipper, histogram merge), the dist layer that propagates trace
    #    context, and the warehouse (WAL, dedupe, HTTP ingest, tail).
    go test -race -count=2 ./internal/trace/... ./internal/dist/... \
        ./internal/warehouse/...

    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    go build -o "$work/sprflow" ./cmd/sprflow
    go build -o "$work/tracecheck" ./cmd/tracecheck

    # 2. Single-node reference: sweep stdout + canonical warehouse dump.
    #    -parallel 1 gives each node one slot in the 3-node runs below,
    #    so every node computes points — the stitched trace must carry
    #    spans from all three, not just the fastest.
    sweep_flags="-design tiny -sweep 4 -parallel 1"
    "$work/sprflow" $sweep_flags \
        -warehouse mem -warehouse-dump "$work/ref.dump" \
        > "$work/ref.out" 2> /dev/null

    # 3. 3-node DistSweep: byte-identical stdout AND warehouse dump,
    #    plus one stitched, tracecheck-valid Chrome trace whose events
    #    cover the coordinator, the per-attempt RPCs, and worker/store
    #    server spans from every node.
    "$work/sprflow" $sweep_flags -dist-nodes 3 \
        -trace "$work/dist-trace.json" \
        -warehouse mem -warehouse-dump "$work/dist.dump" \
        > "$work/dist.out" 2> /dev/null
    if ! diff -u "$work/ref.out" "$work/dist.out"; then
        echo "check.sh: 3-node observed sweep differs from single-node reference" >&2
        exit 1
    fi
    if ! diff -u "$work/ref.dump" "$work/dist.dump"; then
        echo "check.sh: 3-node warehouse dump differs from single-node dump" >&2
        exit 1
    fi
    "$work/tracecheck" \
        -require 'dist.coordinate,dist.dispatch,dist.rpc,dist.worker.run,dist.store.put,campaign.run,campaign.point,flow.synth,flow.sta' \
        -require-arg 'node=w0,node=w1,node=w2' \
        "$work/dist-trace.json"

    # 4. The same deployment under the flaky chaos profile: retries show
    #    up as dist.rpc spans (outcome retry) in the stitched trace, the
    #    fault counters hit the metrics ledger, and neither stdout nor
    #    the warehouse dump moves a byte. (Node coverage is asserted on
    #    the clean trace above — under chaos, reroutes can legitimately
    #    starve a suspected node of points.)
    "$work/sprflow" $sweep_flags -dist-nodes 3 \
        -chaos-profile flaky -chaos-seed 7 \
        -trace "$work/chaos-trace.json" \
        -warehouse mem -warehouse-dump "$work/chaos.dump" \
        > "$work/chaos.out" 2> "$work/chaos.err"
    if ! diff -u "$work/ref.out" "$work/chaos.out"; then
        echo "check.sh: observed sweep under chaos differs from reference" >&2
        cat "$work/chaos.err" >&2
        exit 1
    fi
    if ! diff -u "$work/ref.dump" "$work/chaos.dump"; then
        echo "check.sh: warehouse dump under chaos differs from reference" >&2
        exit 1
    fi
    if ! grep -q 'chaos\.fault\.injected' "$work/chaos.err"; then
        echo "check.sh: obs chaos run injected no faults" >&2
        exit 1
    fi
    "$work/tracecheck" \
        -require 'dist.coordinate,dist.dispatch,dist.rpc,dist.worker.run,campaign.point,flow.sta' \
        "$work/chaos-trace.json"

    # 5. Warehouse durability: kill -9 a run writing the warehouse WAL,
    #    rerun against the same directory — replayed records and fresh
    #    computes must dedupe into a dump byte-identical to the
    #    reference.
    "$work/sprflow" $sweep_flags -dist-nodes 3 -warehouse "$work/whwal" \
        > /dev/null 2>&1 &
    pid=$!
    sleep 0.3
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    "$work/sprflow" $sweep_flags -dist-nodes 3 -warehouse "$work/whwal" \
        -warehouse-dump "$work/replay.dump" \
        > "$work/replay.out" 2> "$work/replay.err"
    if ! diff -u "$work/ref.out" "$work/replay.out"; then
        echo "check.sh: sweep rerun over a killed warehouse WAL differs from reference" >&2
        exit 1
    fi
    if ! diff -u "$work/ref.dump" "$work/replay.dump"; then
        echo "check.sh: warehouse dump after kill -9 replay differs from reference" >&2
        exit 1
    fi
    if ! grep -q ' [1-9][0-9]* replayed' "$work/replay.err"; then
        echo "check.sh: kill -9 left no warehouse records to replay (machine too fast/slow?)" >&2
    fi
    echo "obs_gate=ok"
fi
