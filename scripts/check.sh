#!/bin/sh
# Tier-1 gate for the repository.
#
#   scripts/check.sh          vet + build + race-enabled tests
#   scripts/check.sh bench    also run the campaign benchmark pair and
#                             write the speedup to BENCH_campaign.json
#
# The bench mode runs BenchmarkCampaignSerial (the plain flow.Run loop)
# against BenchmarkCampaignParallel (campaign engine + memo cache) on an
# identical workload and emits one machine-readable line:
#
#   campaign_speedup_x=<serial ns/op divided by parallel ns/op>
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

if [ "${1:-}" = "bench" ]; then
    out=$(go test -run=NONE -bench='BenchmarkCampaign(Serial|Parallel)$' -benchtime=3x .)
    echo "$out"
    echo "$out" | awk '
        /BenchmarkCampaignSerial/   { serial = $3 }
        /BenchmarkCampaignParallel/ { parallel = $3
            for (i = 1; i <= NF; i++) {
                if ($i == "cache_hit_rate") hit = $(i-1)
                if ($i == "qor_area_sum")   qor = $(i-1)
            }
        }
        END {
            if (serial == "" || parallel == "" || parallel == 0) {
                print "check.sh: could not parse benchmark output" > "/dev/stderr"
                exit 1
            }
            speedup = serial / parallel
            printf "campaign_speedup_x=%.2f\n", speedup
            printf "{\"benchmark\":\"campaign\",\"serial_ns_per_op\":%s,\"parallel_ns_per_op\":%s,\"speedup_x\":%.2f,\"cache_hit_rate\":%s,\"qor_area_sum\":%s}\n", \
                serial, parallel, speedup, hit, qor > "BENCH_campaign.json"
        }'
fi
