package repro

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/noise"
)

// Scale selects experiment size: Small targets seconds of runtime for
// tests and CI; Paper targets the paper's actual sample counts.
type Scale int

// Experiment scales.
const (
	Small Scale = iota
	Paper
)

// ---------------------------------------------------------------------
// Figure 1: Design Capability Gap.

// Fig1Result is the available-vs-realized density series.
type Fig1Result struct {
	Points []costmodel.DensityPoint
}

// Fig1 regenerates the Design Capability Gap series (1995-2015).
func Fig1() Fig1Result {
	return Fig1Result{Points: costmodel.CapabilityGap(1995, 2015)}
}

// Print writes the series as a table.
func (r Fig1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 1: Design Capability Gap (available vs realized MTr/mm^2)\n")
	fmt.Fprintf(w, "%-6s %12s %12s %8s\n", "year", "available", "realized", "gap")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-6d %12.2f %12.2f %7.2fx\n", p.Year, p.AvailableMT, p.RealizedMT, p.GapFactor)
	}
}

// ---------------------------------------------------------------------
// Figure 2: Design cost and transistor count trends.

// Fig2Result holds the three cost trajectories of the ITRS model.
type Fig2Result struct {
	WithInnovation []costmodel.YearPoint // DT delivered on time
	NoPost2013     []costmodel.YearPoint // footnote-1 counterfactual
	NoPost2000     []costmodel.YearPoint // footnote-1 counterfactual
}

// Fig2 regenerates the design-cost trajectories (2013-2028 horizon).
func Fig2() Fig2Result {
	p := costmodel.Default()
	inn := costmodel.DefaultInnovations()
	return Fig2Result{
		WithInnovation: costmodel.Project(p, inn, 1995, 2028, 3000),
		NoPost2013:     costmodel.Project(p, inn, 2013, 2028, 2013),
		NoPost2000:     costmodel.Project(p, inn, 2013, 2028, 2000),
	}
}

// Print writes the trajectories.
func (r Fig2Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 2: SOC-CP design cost trajectories\n")
	fmt.Fprintf(w, "%-6s %14s %16s %16s %16s %10s\n",
		"year", "transistors", "cost (DT on time)", "no post-2013 DT", "no post-2000 DT", "verif%")
	no13 := map[int]float64{}
	for _, p := range r.NoPost2013 {
		no13[p.Year] = p.DesignCostUSD
	}
	no00 := map[int]float64{}
	for _, p := range r.NoPost2000 {
		no00[p.Year] = p.DesignCostUSD
	}
	for _, p := range r.WithInnovation {
		if p.Year < 2013 || p.Year%3 != 0 && p.Year != 2028 {
			continue
		}
		fmt.Fprintf(w, "%-6d %14.3g %16s %16s %16s %9.0f%%\n",
			p.Year, p.Transistors, usd(p.DesignCostUSD), usd(no13[p.Year]), usd(no00[p.Year]), p.VerifShare*100)
	}
}

func usd(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("$%.2fB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("$%.1fM", v/1e6)
	default:
		return fmt.Sprintf("$%.0fK", v/1e3)
	}
}

// ---------------------------------------------------------------------
// Figure 3: SP&R implementation noise.

// Fig3Result is the noise study plus headline numbers.
type Fig3Result struct {
	Study       noise.Study
	AreaJumpPct float64
	// GaussianPValue is the Jarque-Bera p-value at the near-fmax
	// point (the Fig. 3 right histogram).
	GaussianPValue float64
	NoiseGrows     bool
}

// Fig3 measures area-vs-target noise on the PULPino proxy.
func Fig3(scale Scale, seed int64) Fig3Result {
	lib := DefaultLibrary()
	var design *Design
	cfg := noise.Config{Seed: seed, Workers: WorkerCount()}
	if scale == Paper {
		design = NewDesign(lib, PulpinoProxy(seed))
		cfg.Seeds = 40
		cfg.Steps = 10
	} else {
		design = NewDesign(lib, TinyDesign(seed))
		cfg.Seeds = 12
		cfg.Steps = 5
	}
	st := noise.Sweep(design, cfg)
	res := Fig3Result{
		Study:       st,
		AreaJumpPct: st.AreaJumpPct(),
		NoiseGrows:  st.NoiseGrowsTowardFMax(),
	}
	if len(st.Points) > 0 {
		res.GaussianPValue = st.Points[len(st.Points)-1].JBPValue
	}
	return res
}

// Print writes the sweep.
func (r Fig3Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: implementation noise on %s (fmax %.3f GHz)\n", r.Study.Design, r.Study.FMax)
	fmt.Fprintf(w, "%-12s %12s %10s %10s %8s %8s\n", "target(GHz)", "mean area", "std", "spread%", "met%", "JB p")
	for _, p := range r.Study.Points {
		fmt.Fprintf(w, "%-12.3f %12.1f %10.2f %9.2f%% %7.0f%% %8.3f\n",
			p.TargetFreqGHz, p.MeanArea, p.StdArea, p.SpreadPct, p.MetFrac*100, p.JBPValue)
	}
	fmt.Fprintf(w, "max adjacent-target area jump: %.1f%%; noise grows toward fmax: %t\n",
		r.AreaJumpPct, r.NoiseGrows)
}

// ---------------------------------------------------------------------
// Figure 4: margins, predictability and achieved quality.

// Fig4Row is one (noise regime, margin policy) outcome.
type Fig4Row struct {
	Regime        string
	Sigma         float64
	OptimalMargin float64
	Quality       float64 // achieved frequency fraction
	Iterations    float64 // expected flow passes
}

// Fig4 quantifies the coevolution loop: today's noisy tools versus a
// predictable future, at the same schedule budget.
func Fig4(iterBudget float64) []Fig4Row {
	regimes := []struct {
		name  string
		model core.MarginModel
	}{
		{"today (noisy, flat flow)", core.MarginModel{Sigma: 0.06, Bias: 0.01}},
		{"future (predictable, partitioned)", core.MarginModel{Sigma: 0.015, Bias: 0.005}},
	}
	var rows []Fig4Row
	for _, r := range regimes {
		m := r.model.OptimalMargin(iterBudget)
		rows = append(rows, Fig4Row{
			Regime:        r.name,
			Sigma:         r.model.Sigma,
			OptimalMargin: m,
			Quality:       r.model.AchievedQuality(m),
			Iterations:    r.model.ExpectedIterations(m),
		})
	}
	return rows
}

// PrintFig4 writes the margin comparison.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintf(w, "Figure 4: margins vs predictability (schedule budget in expected passes)\n")
	fmt.Fprintf(w, "%-36s %8s %8s %9s %6s\n", "regime", "sigma", "margin", "quality", "iters")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %8.3f %7.1f%% %8.1f%% %6.2f\n",
			r.Regime, r.Sigma, r.OptimalMargin*100, r.Quality*100, r.Iterations)
	}
}

// ---------------------------------------------------------------------
// Figure 5: the flow-option trajectory tree.

// Fig5Result quantifies the option-tree explosion.
type Fig5Result struct {
	Steps           []core.StepSpec
	SinglePass      float64
	WithThreeIters  float64
	Explored200Runs float64 // fraction covered by a 200-run budget
}

// Fig5 computes the trajectory-tree numbers.
func Fig5() Fig5Result {
	steps := core.DefaultFlowTree()
	return Fig5Result{
		Steps:           steps,
		SinglePass:      core.Trajectories(steps),
		WithThreeIters:  core.TrajectoriesWithIteration(steps, 3),
		Explored200Runs: core.ExploredFraction(steps, 200),
	}
}

// Print writes the tree summary.
func (r Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: flow-option tree\n")
	for _, s := range r.Steps {
		fmt.Fprintf(w, "  %-12s %3d options\n", s.Name, s.Options)
	}
	fmt.Fprintf(w, "single-pass trajectories: %.3g\n", r.SinglePass)
	fmt.Fprintf(w, "with up to 3 iterations:  %.3g\n", r.WithThreeIters)
	fmt.Fprintf(w, "fraction explored by 200 runs: %.3g\n", r.Explored200Runs)
}

// designForScale builds the standard experiment design.
func designForScale(scale Scale, seed int64) *Design {
	if scale == Paper {
		return NewDesign(DefaultLibrary(), PulpinoProxy(seed))
	}
	return NewDesign(DefaultLibrary(), TinyDesign(seed))
}

// flowBase returns the baseline flow options used by search experiments.
func flowBase(seed int64) flow.Options { return flow.Options{Seed: seed} }

// ensure netlist import is used even if facade evolves.
var _ = netlist.Spec{}
