package repro

// Benchmarks for the extension experiments (paper systems beyond its
// figures): multiphysics droop/timing, longer-ropes prediction,
// IP-preserving sharing, and Stage-4 reinforcement learning.

import "testing"

func BenchmarkExtMultiphysics(b *testing.B) {
	var delta, raw, ml float64
	for i := 0; i < b.N; i++ {
		r, err := Multiphysics(benchScale(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		delta, raw, ml = r.DroopDeltaPs, r.RawPs, r.MLCorrectedPs
	}
	b.ReportMetric(delta, "droop_wns_delta_ps")
	b.ReportMetric(raw, "raw_mae_ps")
	b.ReportMetric(ml, "ml_mae_ps")
}

func BenchmarkExtLongerRopes(b *testing.B) {
	var shortR2, longR2, prefix10 float64
	for i := 0; i < b.N; i++ {
		r, err := Ropes(benchScale(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range r.Evals {
			switch e.Rope {
			case "netlist->synth-area":
				shortR2 = e.TestR2
			case "netlist->signoff-wns":
				longR2 = e.TestR2
			}
		}
		prefix10 = r.PrefixAccuracy[10]
	}
	b.ReportMetric(shortR2, "short_rope_r2")
	b.ReportMetric(longR2, "long_rope_r2")
	b.ReportMetric(prefix10*100, "prefix10_acc_%")
}

func BenchmarkExtSharing(b *testing.B) {
	var leaks, drift float64
	for i := 0; i < b.N; i++ {
		r := Sharing(benchScale(), int64(i))
		leaks = float64(r.Leaks)
		drift = r.FlowDeltaPct
	}
	b.ReportMetric(leaks, "leaks")
	b.ReportMetric(drift, "flow_delta_%")
}

func BenchmarkExtStageFourRL(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r := StageFourRL(benchScale(), int64(i))
		gain = r.LateReward - r.EarlyReward
	}
	b.ReportMetric(gain, "reward_gain")
}

func BenchmarkExtBanditRobustness(b *testing.B) {
	var ts, eg float64
	for i := 0; i < b.N; i++ {
		r := Fig7Robustness(int64(i))
		ts = r.WorstRel["thompson"]
		eg = r.WorstRel["eps-greedy"]
	}
	b.ReportMetric(ts, "thompson_worst_rel")
	b.ReportMetric(eg, "epsgreedy_worst_rel")
}

func BenchmarkExtLastMileRobots(b *testing.B) {
	var drcR, drcN, memR, memN float64
	var cross int
	for i := 0; i < b.N; i++ {
		r := LastMile(benchScale(), int64(i))
		drcR, drcN = r.DRCRobotAttempts, r.DRCNaiveAttempts
		memR, memN = r.MemRobotWL, r.MemRandomWL
		cross = r.PkgGreedyCrossings
	}
	b.ReportMetric(drcR, "drc_robot_attempts")
	b.ReportMetric(drcN, "drc_naive_attempts")
	b.ReportMetric(memR/memN, "mem_wl_ratio")
	b.ReportMetric(float64(cross), "pkg_greedy_crossings")
}

func BenchmarkExtRentStructure(b *testing.B) {
	var pulpino float64
	for i := 0; i < b.N; i++ {
		r := NaturalStructure(benchScale(), int64(i))
		pulpino = r.Exponents["pulpino-proxy"]
	}
	b.ReportMetric(pulpino, "pulpino_rent_p")
}

func BenchmarkExtChickenEgg(b *testing.B) {
	var r2 float64
	var iters float64
	for i := 0; i < b.N; i++ {
		r := ChickenEgg(benchScale(), int64(i))
		r2 = r.PredictionR2
		iters = float64(r.Iterations)
	}
	b.ReportMetric(iters, "fixed_point_iters")
	b.ReportMetric(r2, "prediction_r2")
}

func BenchmarkExtMissingCorner(b *testing.B) {
	var model, base float64
	for i := 0; i < b.N; i++ {
		r, err := MissingCorner(benchScale(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		model, base = r.ModelMAEPs, r.BaselineMAEPs
	}
	b.ReportMetric(model, "model_mae_ps")
	b.ReportMetric(base, "baseline_mae_ps")
}

func BenchmarkExtProjectSchedule(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		r, err := ProjectSchedule()
		if err != nil {
			b.Fatal(err)
		}
		savings = r.SavingsPct
	}
	b.ReportMetric(savings, "best_vs_fifo_savings_%")
}
