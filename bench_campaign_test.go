// Campaign-engine benchmarks: the serial reference loop against the
// engine with memoization on an identical workload — three studies
// revisiting the same (frequency x seed) option points, the repeated-
// sampling pattern of the Fig. 3 / Fig. 7 harnesses. Both benchmarks
// report the same qor_area_sum, proving equal statistical output; the
// parallel variant additionally reports its cache hit rate.
//
// scripts/check.sh bench runs the pair and derives the speedup into
// BENCH_campaign.json.
package repro

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/trace"
	"repro/internal/warehouse"
)

// campaignStudies is how many times the benchmark workload revisits the
// same option points (distinct studies sharing a sweep).
const campaignStudies = 3

func campaignBenchPoints(design *netlist.Netlist, designKey string) []campaign.Point {
	var pts []campaign.Point
	for f := 0; f < 2; f++ {
		for s := 0; s < 4; s++ {
			pts = append(pts, campaign.Point{
				Design:    design,
				DesignKey: designKey,
				Options: flow.Options{
					TargetFreqGHz: 0.35 + 0.15*float64(f),
					Seed:          int64(1000*f + s),
				},
			})
		}
	}
	return pts
}

func BenchmarkCampaignSerial(b *testing.B) {
	design := NewDesign(DefaultLibrary(), TinyDesign(1))
	pts := campaignBenchPoints(design, "")
	var area float64
	for i := 0; i < b.N; i++ {
		area = 0
		for study := 0; study < campaignStudies; study++ {
			for _, p := range pts {
				area += flow.Run(p.Design, p.Options).AreaUm2
			}
		}
	}
	b.ReportMetric(area, "qor_area_sum")
}

func BenchmarkCampaignParallel(b *testing.B) {
	design := NewDesign(DefaultLibrary(), TinyDesign(1))
	pts := campaignBenchPoints(design, campaign.KeyFor(design))
	var area, hitRate float64
	for i := 0; i < b.N; i++ {
		// A fresh cache per iteration: the first study pays every miss,
		// the rest ride the memo — no warm state leaks across b.N.
		cache := campaign.NewCache(0)
		eng := campaign.New(campaign.Config{Cache: cache})
		area = 0
		for study := 0; study < campaignStudies; study++ {
			results, err := eng.Run(context.Background(), pts)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				area += r.AreaUm2
			}
		}
		hitRate = cache.HitRate()
	}
	b.ReportMetric(area, "qor_area_sum")
	b.ReportMetric(hitRate, "cache_hit_rate")
}

// BenchmarkCampaignTraced is BenchmarkCampaignParallel with the tracer
// armed: every campaign point, flow stage, route iteration, and
// scheduler wait emits a span. scripts/check.sh bench compares it
// against the untraced parallel run and gates the overhead at <=5% —
// the cost of full observability must stay in the noise.
func BenchmarkCampaignTraced(b *testing.B) {
	design := NewDesign(DefaultLibrary(), TinyDesign(1))
	pts := campaignBenchPoints(design, campaign.KeyFor(design))
	var area, hitRate float64
	var spans int
	for i := 0; i < b.N; i++ {
		// Fresh tracer and cache per iteration, mirroring the parallel
		// benchmark's cold start; span retention is capped so b.N sets
		// memory, not span volume.
		tr := trace.New(1 << 14)
		trace.Enable(tr)
		cache := campaign.NewCache(0)
		eng := campaign.New(campaign.Config{Cache: cache})
		area = 0
		for study := 0; study < campaignStudies; study++ {
			results, err := eng.Run(context.Background(), pts)
			if err != nil {
				trace.Disable()
				b.Fatal(err)
			}
			for _, r := range results {
				area += r.AreaUm2
			}
		}
		hitRate = cache.HitRate()
		trace.Disable()
		spans = tr.Len()
	}
	b.ReportMetric(area, "qor_area_sum")
	b.ReportMetric(hitRate, "cache_hit_rate")
	b.ReportMetric(float64(spans), "spans")
}

// BenchmarkCampaignWarehoused is BenchmarkCampaignParallel with a
// warehouse emitter wired as the campaign observer: every flow stage of
// every point lands as a METRICS record in an in-memory warehouse.
// scripts/check.sh bench gates the overhead against the untraced
// parallel run at <=5%, same bar as tracing.
func BenchmarkCampaignWarehoused(b *testing.B) {
	design := NewDesign(DefaultLibrary(), TinyDesign(1))
	pts := campaignBenchPoints(design, campaign.KeyFor(design))
	var area, hitRate float64
	var records int
	for i := 0; i < b.N; i++ {
		// Fresh warehouse and cache per iteration, mirroring the parallel
		// benchmark's cold start.
		wh, err := warehouse.Open("", journal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		emit := warehouse.NewEmitter(CampaignID(pts), "bench", pointKeys(pts), wh)
		cache := campaign.NewCache(0)
		eng := campaign.New(campaign.Config{Cache: cache, Observer: emit})
		area = 0
		for study := 0; study < campaignStudies; study++ {
			results, err := eng.Run(context.Background(), pts)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				area += r.AreaUm2
			}
		}
		emit.Flush()
		hitRate = cache.HitRate()
		records = wh.Stats().Records
		wh.Close()
	}
	b.ReportMetric(area, "qor_area_sum")
	b.ReportMetric(hitRate, "cache_hit_rate")
	b.ReportMetric(float64(records), "records")
}
