check:
	scripts/check.sh

bench:
	scripts/check.sh bench

crash:
	scripts/check.sh crash

.PHONY: check bench crash
