check:
	scripts/check.sh

bench:
	scripts/check.sh bench

.PHONY: check bench
