check:
	scripts/check.sh

bench:
	scripts/check.sh bench

crash:
	scripts/check.sh crash

spec:
	scripts/check.sh spec

dist:
	scripts/check.sh dist

chaos:
	scripts/check.sh chaos

obs:
	scripts/check.sh obs

trace-demo:
	scripts/check.sh trace

.PHONY: check bench crash spec dist chaos obs trace-demo
