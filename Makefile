check:
	scripts/check.sh

bench:
	scripts/check.sh bench

crash:
	scripts/check.sh crash

spec:
	scripts/check.sh spec

trace-demo:
	scripts/check.sh trace

.PHONY: check bench crash spec trace-demo
