check:
	scripts/check.sh

bench:
	scripts/check.sh bench

crash:
	scripts/check.sh crash

trace-demo:
	scripts/check.sh trace

.PHONY: check bench crash trace-demo
