package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestLastMileShape(t *testing.T) {
	r := LastMile(Small, 1)
	if r.DRCRobotAttempts >= r.DRCNaiveAttempts {
		t.Errorf("DRC robot %v attempts not below naive %v", r.DRCRobotAttempts, r.DRCNaiveAttempts)
	}
	if r.TimingRobotWNSGain <= r.TimingNaiveWNSGain {
		t.Errorf("timing robot gain %v not above naive %v", r.TimingRobotWNSGain, r.TimingNaiveWNSGain)
	}
	if r.MemRobotWL >= r.MemRandomWL {
		t.Errorf("memory robot WL %v not below random %v", r.MemRobotWL, r.MemRandomWL)
	}
	if r.PkgRobotCrossings != 0 {
		t.Errorf("package robot crossings %d", r.PkgRobotCrossings)
	}
	if r.PkgGreedyCrossings == 0 {
		t.Error("greedy package layout should tangle")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "DRC") {
		t.Error("print malformed")
	}
}

func TestNaturalStructureShape(t *testing.T) {
	r := NaturalStructure(Small, 1)
	if len(r.Exponents) != 3 {
		t.Fatalf("%d families", len(r.Exponents))
	}
	for name, p := range r.Exponents {
		if p <= 0 || p >= 1.2 {
			t.Errorf("%s Rent exponent %v implausible", name, p)
		}
	}
	// The artificial (low-locality) family should be less partitionable
	// (higher Rent exponent) than the pulpino proxy.
	if r.Exponents["artificial"] <= r.Exponents["pulpino-proxy"]-0.15 {
		t.Errorf("artificial p=%v unexpectedly far below pulpino %v",
			r.Exponents["artificial"], r.Exponents["pulpino-proxy"])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Rent") {
		t.Error("print malformed")
	}
}

func TestChickenEggShape(t *testing.T) {
	r := ChickenEgg(Small, 1)
	if !r.Converged {
		t.Error("fixed point did not converge")
	}
	if r.Iterations < 2 {
		t.Error("loop trivially converged")
	}
	if r.PredictionR2 < 0.7 {
		t.Errorf("fixed-point prediction R2 %v too low", r.PredictionR2)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "fixed-point") {
		t.Error("print malformed")
	}
}

func TestMissingCornerShape(t *testing.T) {
	r, err := MissingCorner(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ModelMAEPs >= r.BaselineMAEPs {
		t.Errorf("model MAE %v not below baseline %v", r.ModelMAEPs, r.BaselineMAEPs)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "corner") {
		t.Error("print malformed")
	}
}

func TestProjectScheduleShape(t *testing.T) {
	r, err := ProjectSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != 3 {
		t.Fatalf("%d outcomes", len(r.Outcomes))
	}
	if r.SavingsPct < 0 {
		t.Errorf("savings %v%% negative", r.SavingsPct)
	}
	if r.Outcomes[0].Policy == "fifo" && r.SavingsPct > 0 {
		t.Error("fifo cannot be best with positive savings")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "policy") {
		t.Error("print malformed")
	}
}
