package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestMultiphysicsShape(t *testing.T) {
	r, err := Multiphysics(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPowerNW <= 0 || r.WorstDroopMV < 0 {
		t.Fatalf("power/droop missing: %+v", r)
	}
	if r.DroopWNSPs > r.NominalWNSPs {
		t.Errorf("droop-aware WNS %v better than nominal %v", r.DroopWNSPs, r.NominalWNSPs)
	}
	if r.MLCorrectedPs >= r.RawPs {
		t.Errorf("ML correction did not help: %v vs %v", r.MLCorrectedPs, r.RawPs)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "droop") {
		t.Error("print malformed")
	}
}

func TestRopesShape(t *testing.T) {
	r, err := Ropes(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Evals) == 0 {
		t.Fatal("no rope evals")
	}
	for _, k := range []int{2, 5, 10} {
		if r.PrefixAccuracy[k] <= 0 {
			t.Errorf("prefix accuracy at k=%d missing", k)
		}
	}
	// Longer observation prefix should not be clearly worse.
	if r.PrefixAccuracy[10] < r.PrefixAccuracy[2]-0.05 {
		t.Errorf("prefix accuracy fell with more data: %v", r.PrefixAccuracy)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "span") {
		t.Error("print malformed")
	}
}

func TestSharingShape(t *testing.T) {
	r := Sharing(Small, 1)
	if r.Leaks != 0 {
		t.Errorf("%d leaks", r.Leaks)
	}
	if r.AreaDriftPct > 25 {
		t.Errorf("area drift %v%% too large to stay useful", r.AreaDriftPct)
	}
	if r.FlowDeltaPct > 50 {
		t.Errorf("obfuscated flow result drifted %v%%", r.FlowDeltaPct)
	}
	if r.ProxySpanErr > 0.6 {
		t.Errorf("proxy span error %v", r.ProxySpanErr)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "leaks") {
		t.Error("print malformed")
	}
}

func TestStageFourRLShape(t *testing.T) {
	r := StageFourRL(Small, 1)
	if len(r.Episodes) == 0 {
		t.Fatal("no episodes")
	}
	if r.LateReward < r.EarlyReward-0.2 {
		t.Errorf("reward regressed: %v -> %v", r.EarlyReward, r.LateReward)
	}
	if len(r.Policy) == 0 {
		t.Fatal("no policy")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "episode") {
		t.Error("print malformed")
	}
}

func TestFig7RobustnessShape(t *testing.T) {
	r := Fig7Robustness(1)
	if r.Settings < 6 {
		t.Fatalf("only %d settings", r.Settings)
	}
	for _, a := range []string{"thompson", "softmax", "eps-greedy", "ucb1"} {
		if r.MeanRel[a] <= 0 || r.MeanRel[a] > 1.0001 {
			t.Errorf("%s mean rel %v", a, r.MeanRel[a])
		}
		if r.WorstRel[a] <= 0 || r.WorstRel[a] > 1.0001 {
			t.Errorf("%s worst rel %v", a, r.WorstRel[a])
		}
		if r.WorstRel[a] > r.MeanRel[a]+1e-9 {
			t.Errorf("%s worst above mean", a)
		}
	}
	// The paper's robustness claim, weakened to what the synthetic grid
	// supports: TS stays within ~15%% of the per-setting best everywhere.
	if r.WorstRel["thompson"] < 0.8 {
		t.Errorf("thompson worst-case rel %v below 0.8", r.WorstRel["thompson"])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "thompson") {
		t.Error("print malformed")
	}
}
