package repro

// Extension experiments: systems the paper describes beyond its figures
// (multiphysics analysis, "longer ropes" outcome prediction, IP-
// preserving sharing, Stage-4 reinforcement learning). Each has a
// harness here, a benchmark in bench_test.go, and an entry in
// EXPERIMENTS.md.

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/share"
	"repro/internal/sta"
)

// MultiphysicsResult is the voltage-droop/timing loop measurement
// (Sec. 3.2's "multiphysics analysis flows and loops").
type MultiphysicsResult struct {
	TotalPowerNW  float64
	WorstDroopMV  float64
	AvgDroopMV    float64
	NominalWNSPs  float64
	DroopWNSPs    float64 // droop-aware timing (always <= nominal)
	DroopDeltaPs  float64
	MLCorrectedPs float64 // MAE of ML model predicting droop-aware from nominal
	RawPs         float64 // MAE of using nominal slacks directly
}

// Multiphysics runs the droop/timing loop on a placed design and trains
// the correlation model nominal->droop-aware (the multiphysics
// correlation application).
func Multiphysics(scale Scale, seed int64) (MultiphysicsResult, error) {
	design := designForScale(scale, seed)
	res := RunFlow(design, flow.Options{TargetFreqGHz: 0.5, Seed: seed})
	n := res.Netlist

	// Stress the grid (high activity, weak straps) so the droop/timing
	// coupling is visible — the regime where the paper's multiphysics
	// loops matter.
	pw := power.Analyze(n, power.Options{ClockFreqGHz: 2, ActivityFactor: 0.5, SegResistOhm: 2})
	derate := pw.TimingDerate(0.8)

	nominal := sta.Analyze(n, sta.Config{Engine: sta.Signoff})
	droopAware := sta.Analyze(n, sta.Config{Engine: sta.Signoff, InstDerate: derate})

	out := MultiphysicsResult{
		TotalPowerNW: pw.TotalNW,
		WorstDroopMV: pw.WorstDroopMV,
		AvgDroopMV:   pw.AvgDroopMV,
		NominalWNSPs: nominal.WNSPs,
		DroopWNSPs:   droopAware.WNSPs,
		DroopDeltaPs: nominal.WNSPs - droopAware.WNSPs,
	}

	// Correlation model: predict droop-aware slacks from the nominal
	// engine (so the expensive coupled analysis can be skipped).
	lib := DefaultLibrary()
	var train []*Design
	for i := 0; i < 3; i++ {
		tn := RunFlow(NewDesign(lib, TinyDesign(seed+int64(i)+50)), flow.Options{TargetFreqGHz: 0.5, Seed: seed}).Netlist
		train = append(train, tn)
	}
	// The droop-aware "engine" differs per design (its derates depend
	// on that design's power map), so evaluate the simpler uniform
	// derate proxy: nominal -> uniformly derated signoff.
	model, err := correlate.Train(train,
		sta.Config{Engine: sta.Signoff},
		sta.Config{Engine: sta.Signoff, DeratePct: 3})
	if err != nil {
		return out, err
	}
	ev, err := model.Evaluate(n)
	if err != nil {
		return out, err
	}
	out.RawPs = ev.RawMAEPs
	out.MLCorrectedPs = ev.CorrectedMAEPs
	return out, nil
}

// Print writes the multiphysics summary.
func (r MultiphysicsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Multiphysics: power %.0f nW, droop worst %.2f mV avg %.2f mV\n",
		r.TotalPowerNW, r.WorstDroopMV, r.AvgDroopMV)
	fmt.Fprintf(w, "WNS nominal %.2f ps -> droop-aware %.2f ps (delta %.2f ps)\n",
		r.NominalWNSPs, r.DroopWNSPs, r.DroopDeltaPs)
	fmt.Fprintf(w, "derate-correlation MAE: raw %.2f ps -> ML %.2f ps\n", r.RawPs, r.MLCorrectedPs)
}

// RopesResult holds the longer-ropes evaluation.
type RopesResult struct {
	Evals []predict.Eval
	// PrefixAccuracy maps observed router iterations to doomed/success
	// classification accuracy (the regression counterpart of Table 1).
	PrefixAccuracy map[int]float64
}

// Ropes runs the Sec. 3.3 prediction-span study.
func Ropes(scale Scale, seed int64) (RopesResult, error) {
	lib := DefaultLibrary()
	nDesigns, seedsPer := 3, 2
	if scale == Paper {
		nDesigns, seedsPer = 6, 4
	}
	var designs []*netlist.Netlist
	for i := 0; i < nDesigns; i++ {
		designs = append(designs, NewDesign(lib, TinyDesign(seed+int64(i))))
	}
	variants := []flow.Options{
		{TargetFreqGHz: 0.3, Seed: seed},
		{TargetFreqGHz: 0.9, Seed: seed + 1},
		{TargetFreqGHz: 2.0, Seed: seed + 2},
	}
	samples := predict.CampaignWith(designs, variants, seedsPer,
		predict.CampaignConfig{Workers: WorkerCount()})
	evals, err := predict.Evaluate(predict.StandardRopes(), samples, 0.25, seed)
	if err != nil {
		return RopesResult{}, err
	}
	out := RopesResult{Evals: evals, PrefixAccuracy: map[int]float64{}}

	train, test := Corpora(scale, seed)
	var trainSeries, testSeries [][]int
	for _, r := range train {
		trainSeries = append(trainSeries, r.DRVs)
	}
	for _, r := range test {
		testSeries = append(testSeries, r.DRVs)
	}
	for _, k := range []int{2, 5, 10} {
		m, err := predict.FitPrefix(trainSeries, k)
		if err != nil {
			return out, err
		}
		acc, _ := m.EvaluatePrefix(testSeries)
		out.PrefixAccuracy[k] = acc
	}
	return out, nil
}

// Print writes the ropes table.
func (r RopesResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Longer ropes: prediction quality vs span\n")
	fmt.Fprintf(w, "%-26s %5s %8s %10s\n", "rope", "span", "test R2", "test MAE")
	for _, e := range r.Evals {
		fmt.Fprintf(w, "%-26s %5d %8.3f %10.3f\n", e.Rope, e.Span, e.TestR2, e.TestMAE)
	}
	fmt.Fprintf(w, "prefix doomed-classifier accuracy:")
	for _, k := range []int{2, 5, 10} {
		fmt.Fprintf(w, "  k=%d: %.1f%%", k, r.PrefixAccuracy[k]*100)
	}
	fmt.Fprintln(w)
}

// SharingResult summarizes the IP-preservation study.
type SharingResult struct {
	Leaks        int
	AreaDriftPct float64
	// FlowDeltaPct is the relative difference in implemented area when
	// running the same flow on the obfuscated design (utility check).
	FlowDeltaPct float64
	// ProxySpanErr is the relative error of the proxy's locality
	// statistic vs the original.
	ProxySpanErr float64
}

// Sharing anonymizes a design, verifies no leakage, and checks that the
// shared artifacts remain useful for flow studies.
func Sharing(scale Scale, seed int64) SharingResult {
	design := designForScale(scale, seed)
	anon := share.Anonymize(design, share.Obfuscate, seed)
	out := SharingResult{Leaks: len(share.LeakCheck(design, anon))}
	out.AreaDriftPct = share.Drift(design, anon).Area * 100

	origRes := RunFlow(design, flow.Options{TargetFreqGHz: 0.4, Seed: seed})
	anonRes := RunFlow(anon, flow.Options{TargetFreqGHz: 0.4, Seed: seed})
	if origRes.AreaUm2 > 0 {
		d := (anonRes.AreaUm2 - origRes.AreaUm2) / origRes.AreaUm2 * 100
		if d < 0 {
			d = -d
		}
		out.FlowDeltaPct = d
	}

	target := design.ComputeStats()
	proxy, _ := share.Proxy(target, DefaultLibrary(), seed+1)
	got := proxy.ComputeStats()
	if target.AvgNetSpan > 0 {
		e := (got.AvgNetSpan - target.AvgNetSpan) / target.AvgNetSpan
		if e < 0 {
			e = -e
		}
		out.ProxySpanErr = e
	}
	return out
}

// Print writes the sharing summary.
func (r SharingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "IP-preserving sharing: %d leaks, area drift %.1f%%, flow-result delta %.1f%%, proxy span error %.1f%%\n",
		r.Leaks, r.AreaDriftPct, r.FlowDeltaPct, r.ProxySpanErr*100)
}

// RLResult summarizes Stage-4 Q-learning.
type RLResult struct {
	Episodes    []core.EpisodeStats
	EarlyReward float64
	LateReward  float64
	Policy      map[string]string
}

// StageFourRL trains the Q-learning flow tuner.
func StageFourRL(scale Scale, seed int64) RLResult {
	design := designForScale(scale, seed)
	episodes, steps := 8, 5
	if scale == Paper {
		episodes, steps = 16, 8
	}
	// Start well below capability so the agent has headroom to learn
	// the push-up policy.
	probe := RunFlow(design, flow.Options{TargetFreqGHz: 0.3, Seed: seed})
	start := probe.MaxFreqGHz * 0.5
	agent := core.NewQAgent()
	stats := agent.Train(design, flow.Options{TargetFreqGHz: start, Seed: seed}, episodes, steps, seed)
	out := RLResult{Episodes: stats, Policy: agent.Policy()}
	third := len(stats) / 3
	if third == 0 {
		third = 1
	}
	for i := 0; i < third; i++ {
		out.EarlyReward += stats[i].MeanReward / float64(third)
	}
	for i := len(stats) - third; i < len(stats); i++ {
		out.LateReward += stats[i].MeanReward / float64(third)
	}
	return out
}

// Print writes the RL trajectory.
func (r RLResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Stage-4 Q-learning: reward %.3f (early) -> %.3f (late)\n", r.EarlyReward, r.LateReward)
	for _, e := range r.Episodes {
		fmt.Fprintf(w, "  episode %2d: mean reward %+.3f, met %.0f%%, final target %.3f GHz\n",
			e.Episode, e.MeanReward, e.MetFraction*100, e.FinalTarget)
	}
	fmt.Fprintf(w, "learned policy: %v\n", r.Policy)
}
