package repro

// Second wave of extension experiments: the Sec. 3.1 last-mile robot
// applications, natural-structure (Rent) analysis, the floorplan/
// interconnect chicken-egg fixed point, missing-corner prediction, and
// project-level scheduling.

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/correlate"
	"repro/internal/drcfix"
	"repro/internal/floorplan"
	"repro/internal/memplace"
	"repro/internal/ml"
	"repro/internal/partition"
	"repro/internal/pkglayout"
	"repro/internal/schedule"
	"repro/internal/sizing"
	"repro/internal/sta"
)

// LastMileResult compares robot engineers against naive baselines on
// the paper's four Sec. 3.1 applications.
type LastMileResult struct {
	// DRC fixing (application i): attempts to clean the field.
	DRCRobotAttempts, DRCNaiveAttempts float64
	// Timing closure (application ii): WNS improvement per timer run.
	TimingRobotWNSGain, TimingNaiveWNSGain float64
	// Memory placement (application iii): weighted wirelength.
	MemRobotWL, MemRandomWL float64
	// Package layout (application iv): crossings and length.
	PkgRobotCrossings, PkgGreedyCrossings int
	PkgRobotLen, PkgGreedyLen             float64
}

// LastMile runs all four robot-vs-baseline comparisons. Each trial is
// seeded explicitly, so the per-application trial loops fan out over the
// campaign engine; per-trial values are reduced in trial order to keep
// the floating-point sums identical to the serial loops.
func LastMile(scale Scale, seed int64) LastMileResult {
	var res LastMileResult
	trials := 6
	if scale == Paper {
		trials = 16
	}
	eng := campaign.New(campaign.Config{Workers: campaign.Workers(WorkerCount())})
	ctx := context.Background()

	// (i) DRC fixing.
	type drcTrial struct{ robot, naive float64 }
	drc, _, _ := campaign.Map(ctx, eng, trials, func(i int) drcTrial { //nolint:errcheck // background ctx never cancels
		s := int64(i)
		fr := drcfix.NewField(60, 12, seed+s)
		fn := drcfix.NewField(60, 12, seed+s)
		return drcTrial{
			robot: float64(drcfix.RunRobot(fr, 5000).Attempts),
			naive: float64(drcfix.RunNaive(fn, 5000).Attempts),
		}
	})
	for _, t := range drc {
		res.DRCRobotAttempts += t.robot / float64(trials)
		res.DRCNaiveAttempts += t.naive / float64(trials)
	}

	// (ii) Timing closure: expert path-driven sizing vs random
	// upsizing at the same timer budget.
	design := designForScale(scale, seed)
	rep := sta.Analyze(design, sta.Config{Engine: sta.Signoff})
	design.ClockPeriodPs = 1000 / rep.MaxFreqGHz * 0.88
	expert := design.Clone()
	fix := sizing.Fix(expert, sizing.Config{Seed: seed})
	if fix.TimerRuns > 0 {
		res.TimingRobotWNSGain = (fix.WNSAfter - fix.WNSBefore) / float64(fix.TimerRuns)
	}
	naive := design.Clone()
	rng := rand.New(rand.NewSource(seed))
	before := sta.Analyze(naive, sta.Config{Engine: sta.Signoff})
	timerRuns := 1
	for pass := 0; pass < fix.TimerRuns-1; pass++ {
		for k := 0; k < fix.Upsized/max(1, fix.TimerRuns-1); k++ {
			id := rng.Intn(naive.NumCells())
			if up, ok := naive.Lib.Upsize(naive.Insts[id].Cell); ok {
				naive.Insts[id].Cell = up
			}
		}
		timerRuns++
	}
	after := sta.Analyze(naive, sta.Config{Engine: sta.Signoff})
	res.TimingNaiveWNSGain = (after.WNSPs - before.WNSPs) / float64(max(1, timerRuns))

	// (iii) Memory placement.
	type memTrial struct {
		robotWL, randomWL float64
		legal             bool
	}
	mem, _, _ := campaign.Map(ctx, eng, trials, func(i int) memTrial { //nolint:errcheck // background ctx never cancels
		s := int64(i)
		rng := rand.New(rand.NewSource(seed + s))
		b := memplace.Block{W: 100, H: 100}
		macros := make([]memplace.Macro, 5)
		for i := range macros {
			macros[i] = memplace.Macro{
				Name: fmt.Sprintf("m%d", i),
				W:    8 + rng.Float64()*10, H: 8 + rng.Float64()*10,
				LogicX: 20 + rng.Float64()*60, LogicY: 20 + rng.Float64()*60,
				Weight: 1 + rng.Float64()*10,
			}
		}
		r := memplace.Robot(b, macros)
		n := memplace.Random(b, macros, seed+s+100)
		return memTrial{robotWL: r.WirelengthUm, randomWL: n.WirelengthUm, legal: r.Legal && n.Legal}
	})
	for _, t := range mem {
		if t.legal {
			res.MemRobotWL += t.robotWL / float64(trials)
			res.MemRandomWL += t.randomWL / float64(trials)
		}
	}

	// (iv) Package layout.
	type pkgTrial struct {
		robotCross, greedyCross int
		robotLen, greedyLen     float64
	}
	pkg, _, _ := campaign.Map(ctx, eng, trials, func(i int) pkgTrial { //nolint:errcheck // background ctx never cancels
		s := int64(i)
		rng := rand.New(rand.NewSource(seed + s))
		sigs := make([]pkglayout.Signal, 14)
		for i := range sigs {
			sigs[i] = pkglayout.Signal{Name: fmt.Sprintf("s%d", i), Angle: rng.Float64() * 6.28, R: 10}
		}
		balls := pkglayout.Ring(18, 25)
		ra := pkglayout.Robot(sigs, balls)
		ga := pkglayout.Greedy(sigs, balls)
		return pkgTrial{
			robotCross:  pkglayout.Crossings(sigs, balls, ra),
			greedyCross: pkglayout.Crossings(sigs, balls, ga),
			robotLen:    pkglayout.Length(sigs, balls, ra),
			greedyLen:   pkglayout.Length(sigs, balls, ga),
		}
	})
	for _, t := range pkg {
		res.PkgRobotCrossings += t.robotCross
		res.PkgGreedyCrossings += t.greedyCross
		res.PkgRobotLen += t.robotLen / float64(trials)
		res.PkgGreedyLen += t.greedyLen / float64(trials)
	}
	return res
}

// Print writes the robot-vs-baseline table.
func (r LastMileResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Last-mile robot engineers (Sec. 3.1 applications)\n")
	fmt.Fprintf(w, "%-24s %14s %14s\n", "task", "robot", "baseline")
	fmt.Fprintf(w, "%-24s %14.1f %14.1f   (fix attempts to clean, lower better)\n",
		"(i) DRC fixing", r.DRCRobotAttempts, r.DRCNaiveAttempts)
	fmt.Fprintf(w, "%-24s %14.2f %14.2f   (WNS ps gained per timer run)\n",
		"(ii) timing closure", r.TimingRobotWNSGain, r.TimingNaiveWNSGain)
	fmt.Fprintf(w, "%-24s %14.1f %14.1f   (weighted macro WL, lower better)\n",
		"(iii) memory placement", r.MemRobotWL, r.MemRandomWL)
	fmt.Fprintf(w, "%-24s %10d wires %10d wires (crossings; lengths %.0f vs %.0f)\n",
		"(iv) package layout", r.PkgRobotCrossings, r.PkgGreedyCrossings, r.PkgRobotLen, r.PkgGreedyLen)
}

// StructureResult is the Rent/natural-structure analysis.
type StructureResult struct {
	// Exponents maps design family to measured Rent exponent.
	Exponents map[string]float64
	FitR2     map[string]float64
}

// NaturalStructure extracts intrinsic Rent parameters for the design
// families (ML application (ii): structure that permits partitioning).
func NaturalStructure(scale Scale, seed int64) StructureResult {
	lib := DefaultLibrary()
	levels := 3
	if scale == Paper {
		levels = 4
	}
	res := StructureResult{Exponents: map[string]float64{}, FitR2: map[string]float64{}}
	for _, spec := range []DesignSpec{PulpinoProxy(seed), Artificial(seed), TinyDesign(seed)} {
		n := NewDesign(lib, spec)
		r := partition.Rent(n, levels, seed)
		res.Exponents[spec.Name] = r.Exponent
		res.FitR2[spec.Name] = r.R2
	}
	return res
}

// Print writes the Rent table.
func (r StructureResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Natural structure: intrinsic Rent exponents\n")
	for name, p := range r.Exponents {
		fmt.Fprintf(w, "  %-16s p = %.3f (fit R2 %.2f)\n", name, p, r.FitR2[name])
	}
}

// ChickenEggResult is the floorplan/interconnect fixed-point study.
type ChickenEggResult struct {
	Iterations   int
	Converged    bool
	WLGrowthPct  float64 // fixed-point WL vs first-pass WL
	PredictionR2 float64 // ML prediction of the fixed point from initial features
}

// ChickenEgg runs the fixed-point loop on a netlist-derived instance and
// trains the fixed-point predictor on random cases (ML application (iv)).
func ChickenEgg(scale Scale, seed int64) ChickenEggResult {
	design := designForScale(scale, seed)
	blocks, conns := floorplan.FromNetlist(design, 2, seed)
	loop := floorplan.FixedPoint(blocks, conns, floorplan.LoopConfig{})
	res := ChickenEggResult{Iterations: loop.Iterations, Converged: loop.Converged}
	if len(loop.WireTrace) > 0 && loop.WireTrace[0] > 0 {
		final := loop.WireTrace[len(loop.WireTrace)-1]
		res.WLGrowthPct = (final - loop.WireTrace[0]) / loop.WireTrace[0] * 100
	}

	cases := 60
	if scale == Paper {
		cases = 150
	}
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []float64
	for i := 0; i < cases; i++ {
		bl, cn := floorplan.RandomCase(rng, 4+rng.Intn(8))
		x = append(x, floorplan.Features(bl, cn, floorplan.LoopConfig{}))
		fp := floorplan.FixedPoint(bl, cn, floorplan.LoopConfig{})
		y = append(y, fp.WireTrace[len(fp.WireTrace)-1])
	}
	xtr, ytr, xte, yte := ml.Split(x, y, 0.25, seed)
	sc := ml.FitScaler(xtr)
	if reg, err := ml.FitRidge(sc.Transform(xtr), ytr, 1); err == nil {
		res.PredictionR2 = ml.R2(reg.PredictAll(sc.Transform(xte)), yte)
	}
	return res
}

// Print writes the fixed-point summary.
func (r ChickenEggResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Chicken-egg loop (floorplan <-> interconnect): converged=%t in %d iterations, WL grew %.1f%%\n",
		r.Converged, r.Iterations, r.WLGrowthPct)
	fmt.Fprintf(w, "fixed-point prediction from initial features: R2 = %.3f\n", r.PredictionR2)
}

// CornerResult is the missing-corner prediction study.
type CornerResult struct {
	ModelMAEPs    float64
	BaselineMAEPs float64
	CostSavedPct  float64 // of the 4-corner signoff cost
}

// MissingCorner trains TT/SS/FF -> SS-cold prediction and evaluates on a
// held-out design.
func MissingCorner(scale Scale, seed int64) (CornerResult, error) {
	lib := DefaultLibrary()
	var train []*Design
	nTrain := 4
	if scale == Paper {
		nTrain = 8
	}
	for i := 0; i < nTrain; i++ {
		train = append(train, NewDesign(lib, TinyDesign(seed+int64(i))))
	}
	test := designForScale(scale, seed+100)
	engine := sta.Config{Engine: sta.Signoff}
	m, err := correlate.TrainCorners(train, engine,
		[]sta.Corner{sta.CornerTT, sta.CornerSS, sta.CornerFF}, sta.CornerSSCold)
	if err != nil {
		return CornerResult{}, err
	}
	ev, err := m.Evaluate(test)
	if err != nil {
		return CornerResult{}, err
	}
	res := CornerResult{ModelMAEPs: ev.ModelMAEPs, BaselineMAEPs: ev.BaselineMAEPs}
	// One corner of four skipped.
	res.CostSavedPct = 25
	return res, nil
}

// Print writes the corner summary.
func (r CornerResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Missing-corner prediction: model MAE %.2f ps vs worst-corner baseline %.2f ps (%.0f%% of corner signoff cost avoided)\n",
		r.ModelMAEPs, r.BaselineMAEPs, r.CostSavedPct)
}

// ScheduleResult compares project-scheduling policies.
type ScheduleResult struct {
	Outcomes []schedule.Outcome
	// SavingsPct is the penalty-cost reduction of the best policy vs
	// FIFO.
	SavingsPct float64
}

// ProjectSchedule runs the portfolio comparison (ref [1], footnote 4).
func ProjectSchedule() (ScheduleResult, error) {
	projects := []schedule.Project{
		{Name: "soc-a", Release: 0, Due: 24, WorkEM: 60, MaxParallel: 6},
		{Name: "soc-b", Release: 2, Due: 8, WorkEM: 30, MaxParallel: 8},
		{Name: "ip-c", Release: 4, Due: 10, WorkEM: 20, MaxParallel: 4},
		{Name: "deriv-d", Release: 6, Due: 14, WorkEM: 24, MaxParallel: 6},
		{Name: "testchip-e", Release: 1, Due: 6, WorkEM: 10, MaxParallel: 4},
	}
	outs, err := schedule.Compare(projects, 10)
	if err != nil {
		return ScheduleResult{}, err
	}
	res := ScheduleResult{Outcomes: outs}
	var fifo, best float64
	for _, o := range outs {
		if o.Policy == "fifo" {
			fifo = o.TotalUSD
		}
	}
	best = outs[0].TotalUSD
	if fifo > 0 {
		res.SavingsPct = (fifo - best) / fifo * 100
	}
	return res, nil
}

// Print writes the scheduling comparison.
func (r ScheduleResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Project scheduling (5 projects, 10 engineers)\n")
	fmt.Fprintf(w, "%-16s %12s %12s %10s %6s\n", "policy", "penalty $", "total $", "late", "util")
	for _, o := range r.Outcomes {
		fmt.Fprintf(w, "%-16s %12.0f %12.0f %10d %5.0f%%\n",
			o.Policy, o.PenaltyUSD, o.TotalUSD, o.LateProjects, o.Utilization*100)
	}
	fmt.Fprintf(w, "best policy saves %.1f%% vs FIFO\n", r.SavingsPct)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
