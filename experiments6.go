package repro

import (
	"fmt"
	"io"

	"repro/internal/doom"
	"repro/internal/logfile"
	"repro/internal/mdp"
	"repro/internal/route"
)

// ---------------------------------------------------------------------
// Live doomed-run abort: the Fig. 9/10 card acting while runs execute.

// DoomedLiveResult compares live supervised execution of the test
// corpus against the uninterrupted baseline and the post-hoc Table 1
// accounting. "Iterations" are detail-route rip-up passes — the unit of
// license occupancy the paper's STOP policy reclaims.
type DoomedLiveResult struct {
	Consecutive int // consecutive-STOP requirement used live
	TrainRuns   int
	TestRuns    int

	BaselineIters int // passes executed by the uninterrupted corpus
	LiveIters     int // passes executed under live supervision
	SavedIters    int // BaselineIters - LiveIters (reclaimed license-iterations)
	SavedPct      float64

	PostHocSavedIters int // Table 1's hypothetical savings at the same k

	StoppedRuns   int // runs the card killed live
	Type1         int // stopped runs that would have succeeded
	Type2         int // doomed runs that ran to completion anyway
	LiveErrorPct  float64
	QORMismatches int // finished runs whose DRV series differs from baseline (must be 0)
}

// DoomedLive trains the strategy card on the artificial corpus, then
// regenerates the embedded-CPU test corpus twice from identical seeds:
// once uninterrupted (the baseline every prior PR measured post hoc)
// and once with a doom.Supervisor wired into the router's iteration
// hook, so STOP verdicts truncate runs in place. Because CONTINUE
// decisions never touch the rng stream, every run the card lets finish
// is bit-identical to its baseline twin — the savings are pure
// reclaimed compute, not a QOR trade.
func DoomedLive(scale Scale, seed int64) DoomedLiveResult {
	train, test := Corpora(scale, seed)
	card := mdp.BuildCard(train, mdp.CardConfig{})
	const k = 2 // the Table 1 sweet spot: near-minimal error, most savings

	_, nTest, designs := corpusSizes(scale)
	sup := doom.New(card, k)
	sup.Budget = 20
	// The live corpus shares the test corpus's spec but not its
	// outcomes (STOPped runs are truncated), so its journal entries are
	// salted apart. Replay is safe: the card's verdicts are a pure
	// function of each run's series, and the supervisor's streak state
	// is per run key, so a replayed run perturbs nothing.
	pw, rt := KernelParallel()
	live := journaledCorpus(logfile.CorpusSpec{
		Name: "embedded-cpu", Runs: nTest, Seed: seed + 1, Designs: designs,
		Workers: WorkerCount(), PlaceWorkers: pw, RouteTiles: rt,
		Supervise: func(id int, design string) route.IterHook {
			return sup.Hook(fmt.Sprintf("%s#%d", design, id))
		},
	}, fmt.Sprintf("live-k%d", k))

	res := DoomedLiveResult{
		Consecutive: k,
		TrainRuns:   len(train),
		TestRuns:    len(test),
	}
	res.PostHocSavedIters = card.Evaluate(test, k).IterationsSaved
	for i := range test {
		base, lv := &test[i], &live[i]
		res.BaselineIters += len(base.DRVs) - 1
		res.LiveIters += len(lv.DRVs) - 1
		if lv.StoppedAt > 0 {
			res.StoppedRuns++
			if base.Success {
				res.Type1++
			}
			// The executed prefix must still match the baseline exactly.
			if !prefixEqual(base.DRVs, lv.DRVs) {
				res.QORMismatches++
			}
			continue
		}
		if !base.Success {
			res.Type2++
		}
		if !intsEqual(base.DRVs, lv.DRVs) {
			res.QORMismatches++
		}
	}
	res.SavedIters = res.BaselineIters - res.LiveIters
	if res.BaselineIters > 0 {
		res.SavedPct = 100 * float64(res.SavedIters) / float64(res.BaselineIters)
	}
	if res.TestRuns > 0 {
		res.LiveErrorPct = 100 * float64(res.Type1+res.Type2) / float64(res.TestRuns)
	}
	return res
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	return prefixEqual(a, b)
}

// prefixEqual reports whether b is an exact prefix of a (b no longer
// than a, element-wise equal).
func prefixEqual(a, b []int) bool {
	if len(b) > len(a) {
		return false
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Print writes the live-vs-post-hoc comparison, ending with
// machine-readable key=value lines for scripts/check.sh.
func (r DoomedLiveResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Live doomed-run abort (MDP card, %d consecutive STOPs, %d train / %d test logfiles)\n",
		r.Consecutive, r.TrainRuns, r.TestRuns)
	fmt.Fprintf(w, "detail-route iterations:  baseline %d, live %d (reclaimed %d = %.1f%%)\n",
		r.BaselineIters, r.LiveIters, r.SavedIters, r.SavedPct)
	fmt.Fprintf(w, "post-hoc (Table 1) bound: %d iterations on doomed runs\n", r.PostHocSavedIters)
	fmt.Fprintf(w, "runs stopped live:        %d of %d (Type1 %d, Type2 %d, error %.2f%%)\n",
		r.StoppedRuns, r.TestRuns, r.Type1, r.Type2, r.LiveErrorPct)
	fmt.Fprintf(w, "QOR drift on finished runs: %d (CONTINUE-classified runs are bit-identical when 0)\n",
		r.QORMismatches)
	fmt.Fprintf(w, "doomed_live_baseline_iters=%d\n", r.BaselineIters)
	fmt.Fprintf(w, "doomed_live_saved_iters=%d\n", r.SavedIters)
	fmt.Fprintf(w, "doomed_live_saved_pct=%.2f\n", r.SavedPct)
	fmt.Fprintf(w, "doomed_live_posthoc_saved_iters=%d\n", r.PostHocSavedIters)
	fmt.Fprintf(w, "doomed_live_qor_mismatches=%d\n", r.QORMismatches)
	fmt.Fprintf(w, "doomed_live_error_pct=%.2f\n", r.LiveErrorPct)
}
