package repro

// PR 4: crash-safe orchestration. The paper's premise is that schedule
// slips come from wasted tool time; a killed overnight campaign that
// recomputes every finished run on restart is exactly such waste. This
// file exposes the campaign journal at the harness level: a durable
// sweep for the sprflow CLI, and a process-wide corpus-journal knob the
// doomed-run experiments pick up.

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"reflect"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/journal"
	"repro/internal/logfile"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// ResumeStats re-exports the campaign resume accounting.
type ResumeStats = campaign.ResumeStats

// corpusJournalDir is the process-wide corpus journal root ("" = off).
var corpusJournalDir atomic.Value

// SetCorpusJournal points corpus generation (Corpora, DoomedLive) at a
// durable journal directory: completed detailed-route runs are appended
// as they finish and replayed on restart, so a killed experiment
// resumes instead of regenerating. An empty dir turns journaling off.
func SetCorpusJournal(dir string) { corpusJournalDir.Store(dir) }

// CorpusJournalDir reports the configured corpus journal root.
func CorpusJournalDir() string {
	if v, ok := corpusJournalDir.Load().(string); ok {
		return v
	}
	return ""
}

// corpusJournalErr remembers the first corpus-journal durability
// failure (see CorpusJournalErr).
var corpusJournalErr atomic.Value

// CorpusJournalErr reports the first journal failure seen by corpus
// generation since the journal was configured. Journal failures are
// deliberately non-fatal — durability must never cost the live
// computation — so callers that care (the doomed CLI) poll this after
// their experiments finish.
func CorpusJournalErr() error {
	if v, ok := corpusJournalErr.Load().(error); ok {
		return v
	}
	return nil
}

// journaledCorpus runs spec through GenerateJournaled when a corpus
// journal is configured, salting the entries so differently supervised
// corpora sharing a spec never serve each other.
func journaledCorpus(spec logfile.CorpusSpec, salt string) []logfile.Run {
	dir := CorpusJournalDir()
	if dir == "" {
		return logfile.Generate(spec)
	}
	spec.JournalDir = dir
	spec.JournalSalt = salt
	runs, err := logfile.GenerateJournaled(spec)
	if err != nil && corpusJournalErr.Load() == nil {
		// The runs slice is complete even when the journal is not.
		corpusJournalErr.Store(err)
	}
	return runs
}

// SweepConfig parameterizes a crash-safe QOR sweep: the full cross of
// Freqs x Seeds on one design, journaled so a kill -9 at any moment
// loses at most the runs in flight.
type SweepConfig struct {
	Design *Design
	Base   FlowOptions // Seed and TargetFreqGHz are overridden per point
	Freqs  []float64
	Seeds  []int64
	// Workers caps concurrency (0 = one per CPU); results are identical
	// at any setting.
	Workers int
	// JournalDir enables the durable journal (and resume) when set.
	JournalDir string
	// StageTimeout arms the per-stage hung-tool watchdog (0 = off).
	StageTimeout time.Duration
	// Speculate overlaps downstream stages on predicted upstream
	// artifacts drawn from a sweep-local artifact memory
	// (flow.Options.Speculate + internal/spec, cross-seed tier: the
	// sweep's points are unique in (frequency, seed), so only family
	// predictions can fire). Committed results are byte-identical to a
	// non-speculative sweep at any Workers setting; only wall-clock and
	// the stderr-side accounting change.
	Speculate bool
	// SpecTolerancePct is the speculative commit tolerance on predicted
	// stage scalars (0 = the flow default, 1%).
	SpecTolerancePct float64
	// Warehouse, when non-nil, receives one METRICS record per flow
	// stage per point (node "local") through a warehouse emitter wired
	// as the campaign observer.
	Warehouse warehouse.Appender
}

// CampaignID derives the stable identity of a campaign from its point
// list: the fnv-64a of every point's cache key in order. Every process
// that derives the same point list — the single-node sweep, each campd
// worker, the coordinator — computes the same id, which is what lets
// warehouse records from any node land in one queryable campaign.
func CampaignID(pts []campaign.Point) string {
	h := fnv.New64a()
	for _, p := range pts {
		io.WriteString(h, p.CacheKey()) //nolint:errcheck
		h.Write([]byte{0})              //nolint:errcheck
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// pointKeys lists the canonical options key of every point, in point
// order — the emitter's step-record-to-point-index map.
func pointKeys(pts []campaign.Point) []string {
	keys := make([]string, len(pts))
	for i, p := range pts {
		keys[i] = p.Options.Key()
	}
	return keys
}

// SweepPoint is one (frequency, seed) outcome.
type SweepPoint struct {
	FreqGHz    float64
	Seed       int64
	Met        bool
	WNSPs      float64
	AreaUm2    float64
	PowerNW    float64
	MaxFreqGHz float64
}

// SweepResult is a completed sweep plus its resume accounting.
type SweepResult struct {
	Points []SweepPoint
	// Resume reports what the journal replayed (zero value when no
	// journal was configured or the journal was empty).
	Resume ResumeStats
	// Recovery reports what journal recovery found on open.
	Recovery journal.RecoveryStats
	// JournalErr is a non-fatal durability failure: the sweep completed
	// in memory but the journal may be missing points.
	JournalErr error
}

// Sweep runs the full Freqs x Seeds cross on the campaign engine. With
// JournalDir set the sweep is crash-safe: every completed point is
// durable before the next is dispatched to disk-order, and rerunning
// the same sweep after a kill reproduces the uninterrupted results
// bit-identically at any worker count.
func Sweep(cfg SweepConfig) (SweepResult, error) {
	pts, err := CampaignPoints(cfg)
	if err != nil {
		return SweepResult{}, err
	}

	ecfg := campaign.Config{
		Workers:      campaign.Workers(cfg.Workers),
		Cache:        campaign.NewCache(0),
		StageTimeout: cfg.StageTimeout,
	}
	if cfg.Speculate {
		ecfg.Oracle = spec.NewMemory(spec.Options{CrossSeed: true})
	}
	var emit *warehouse.Emitter
	if cfg.Warehouse != nil {
		emit = warehouse.NewEmitter(CampaignID(pts), "local", pointKeys(pts), cfg.Warehouse)
		ecfg.Observer = emit
		defer emit.Flush()
	}
	var out SweepResult
	var jrn *campaign.Journal
	if cfg.JournalDir != "" {
		var err error
		jrn, err = campaign.OpenJournal(cfg.JournalDir, journal.Options{})
		if err != nil {
			return out, err
		}
		defer jrn.Close()
		out.Recovery = jrn.Stats()
		ecfg.Journal = jrn
	}
	eng := campaign.New(ecfg)

	var results []*flow.Result
	if jrn != nil {
		results, out.Resume, err = eng.Resume(context.Background(), pts)
	} else {
		results, err = eng.Run(context.Background(), pts)
	}
	if err != nil {
		return out, err
	}
	if jrn != nil {
		out.JournalErr = jrn.Err()
	}

	out.Points = make([]SweepPoint, len(results))
	for i, r := range results {
		out.Points[i] = SweepPoint{
			FreqGHz:    pts[i].Options.TargetFreqGHz,
			Seed:       pts[i].Options.Seed,
			Met:        r.Met,
			WNSPs:      r.WNSPs,
			AreaUm2:    r.AreaUm2,
			PowerNW:    r.PowerNW,
			MaxFreqGHz: r.MaxFreqGHz,
		}
	}
	return out, nil
}

// Print renders one line per point — a stable, diffable format, so a
// killed-and-resumed sweep can be compared byte-for-byte against an
// uninterrupted one.
func (r SweepResult) Print(w io.Writer) {
	for _, p := range r.Points {
		fmt.Fprintf(w, "point freq=%.3f seed=%d met=%t wns=%.1f area=%.1f power=%.1f maxfreq=%.3f\n",
			p.FreqGHz, p.Seed, p.Met, p.WNSPs, p.AreaUm2, p.PowerNW, p.MaxFreqGHz)
	}
}

// ---------------------------------------------------------------------
// Speculative stage overlap: deterministic accounting for the CLIs.

// SpecOverlapResult is the outcome of running one downstream sweep
// twice — without and with speculative stage overlap — and comparing
// every committed result against the non-speculative reference. All
// fields are pure functions of (design, seed, oracle contents): the
// points run sequentially with unlimited speculative slots, so the
// report is byte-stable across machines and reruns.
type SpecOverlapResult struct {
	Points                 int
	Launched               int // speculative chains started
	Skipped                int // predictions dropped (redundant or slot-starved)
	Committed              int // downstream stages adopted from speculation
	Discarded              int // chains judged wrong and dropped
	SynthHits, SynthMisses int
	PlaceHits, PlaceMisses int
	// QORMismatches counts speculative results that drifted from the
	// non-speculative reference. Must be 0: commit decisions are pure
	// functions of (prediction, real result), never of timing.
	QORMismatches int
}

// SpecOverlap runs a routing-budget sweep — the downstream-knob shape
// speculation exists for: upstream inputs pinned, so after the first
// (cold) point the artifact memory re-derives every upstream stage —
// once as the plain reference and once speculatively against a shared
// artifact memory, accumulating the flow's speculation accounting.
func SpecOverlap(scale Scale, seed int64) SpecOverlapResult {
	design := designForScale(scale, seed)
	iters := []int{8, 12, 16, 20}
	if scale == Paper {
		iters = []int{6, 8, 10, 12, 14, 16, 18, 20}
	}
	mem := spec.NewMemory(spec.Options{})
	res := SpecOverlapResult{Points: len(iters)}
	for _, it := range iters {
		opts := flow.Options{TargetFreqGHz: 0.5, Seed: seed, RouteIters: it}
		ref := flow.Run(design, opts)

		opts.Speculate = flow.SpecConfig{Enabled: true}
		var st flow.SpecStats
		got, err := flow.RunCfg(context.Background(), design, opts, flow.RunConfig{
			Oracle:     mem,
			SpecReport: func(s flow.SpecStats) { st = s },
		})
		// The committed result may differ from the reference only in its
		// own recorded speculation config; everything the flow computed
		// must match exactly.
		if got != nil {
			norm := *got
			norm.Options.Speculate = flow.SpecConfig{}
			if err != nil || !reflect.DeepEqual(&norm, ref) {
				res.QORMismatches++
			}
		} else {
			res.QORMismatches++
		}
		res.Launched += st.Launched
		res.Skipped += st.Skipped
		res.Committed += st.Committed
		res.Discarded += st.Discarded
		countHit := func(j flow.SpecJudgment, hits, misses *int) {
			if !j.Predicted {
				return
			}
			if j.Hit {
				*hits++
			} else {
				*misses++
			}
		}
		countHit(st.Synth, &res.SynthHits, &res.SynthMisses)
		countHit(st.Place, &res.PlaceHits, &res.PlaceMisses)
	}
	return res
}

// Print writes the overlap report, ending with machine-readable
// key=value lines for scripts/check.sh spec.
func (r SpecOverlapResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Speculative stage overlap (%d downstream points, artifact-memory oracle)\n", r.Points)
	fmt.Fprintf(w, "chains:    %d launched, %d skipped, %d discarded; %d stages committed\n",
		r.Launched, r.Skipped, r.Discarded, r.Committed)
	fmt.Fprintf(w, "predictor: synth %d hit / %d miss, place %d hit / %d miss\n",
		r.SynthHits, r.SynthMisses, r.PlaceHits, r.PlaceMisses)
	fmt.Fprintf(w, "QOR drift vs non-speculative reference: %d (commits are timing-independent when 0)\n",
		r.QORMismatches)
	fmt.Fprintf(w, "spec_overlap_points=%d\n", r.Points)
	fmt.Fprintf(w, "spec_overlap_launched=%d\n", r.Launched)
	fmt.Fprintf(w, "spec_overlap_committed=%d\n", r.Committed)
	fmt.Fprintf(w, "spec_overlap_discarded=%d\n", r.Discarded)
	fmt.Fprintf(w, "spec_overlap_qor_mismatches=%d\n", r.QORMismatches)
}
