// Quickstart: generate a synthetic design, run the full SP&R flow, and
// inspect the QOR — the minimal end-to-end use of the public API.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A standard-cell library and a PULPino-like synthetic design.
	lib := repro.DefaultLibrary()
	design := repro.NewDesign(lib, repro.PulpinoProxy(1))
	stats := design.ComputeStats()
	fmt.Printf("generated %s: %d cells (%d registers), %d nets, logic depth %d\n",
		design.Name, stats.Cells, stats.Registers, stats.Nets, stats.MaxLevel)

	// One flow run: synthesis -> placement -> CTS -> routing -> signoff.
	result := repro.RunFlow(design, repro.FlowOptions{
		TargetFreqGHz: 0.55,
		Seed:          42,
	})

	fmt.Printf("\nflow result at %.2f GHz target:\n", result.Options.TargetFreqGHz)
	fmt.Printf("  area:       %.1f um^2 (%d cells after synthesis)\n", result.AreaUm2, result.Netlist.NumCells())
	fmt.Printf("  wirelength: %.1f um placed, %.1f um routed\n", result.Place.HPWLUm, result.Global.WirelengthUm)
	fmt.Printf("  routing:    %d -> %d DRVs in %d iterations (clean=%t)\n",
		result.Route.DRVs[0], result.Route.Final, result.Route.IterationsRun, result.RouteOK)
	fmt.Printf("  timing:     WNS %.1f ps, max frequency %.3f GHz (met=%t)\n",
		result.WNSPs, result.MaxFreqGHz, result.TimingMet)
	fmt.Printf("  power:      %.1f nW leakage\n", result.PowerNW)
	fmt.Printf("  runtime:    %.1f proxy units\n", result.RuntimeProxy)

	if result.Met {
		fmt.Println("\ntarget met in one pass — no iteration needed.")
	} else {
		fmt.Println("\ntarget missed — a Stage-1 robot would now retry with adjusted options.")
	}
}
