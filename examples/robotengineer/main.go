// Robot engineer: the paper's Stage-1 and Stage-2 ML insertion in
// action. A single robot drives a too-aggressive target to closure by
// expert-system retries; then an orchestrated fleet of robots, steered
// by Thompson Sampling under a 5-license pool, finds the best feasible
// frequency — no human in the loop.
package main

import (
	"fmt"

	"repro"
)

func main() {
	lib := repro.DefaultLibrary()
	design := repro.NewDesign(lib, repro.TinyDesign(7))

	// --- Stage 1: one robot, one (too ambitious) target. ---
	fmt.Println("Stage 1: robot engineer retries an aggressive target")
	robot := repro.Robot{
		Design: design,
		Base:   repro.FlowOptions{TargetFreqGHz: 8.0, Seed: 1},
	}
	out := robot.Execute()
	for i, a := range out.Attempts {
		fmt.Printf("  attempt %d: %.3f GHz -> met=%-5t  %s\n",
			i, a.Options.TargetFreqGHz, a.Result.Met, a.Reason)
	}
	fmt.Printf("  => succeeded=%t after %d attempts (runtime proxy %.1f)\n\n",
		out.Succeeded, len(out.Attempts), out.RuntimeProxy)

	// --- Stage 2: orchestrated search over a frequency ladder. ---
	fmt.Println("Stage 2: 5 concurrent robots, Thompson Sampling over targets")
	probe := repro.RunFlow(design, repro.FlowOptions{TargetFreqGHz: 0.3, Seed: 1})
	fmax := probe.MaxFreqGHz
	arms := []float64{fmax * 0.6, fmax * 0.8, fmax * 1.0, fmax * 1.3, fmax * 2.5}
	res, err := repro.Search(design, repro.FlowOptions{Seed: 2}, repro.Constraints{},
		repro.SearchConfig{
			Freqs:      arms,
			Iterations: 12,
			Licenses:   5,
			Algorithm:  "thompson",
			Seed:       2,
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  arms (GHz):")
	for _, f := range arms {
		fmt.Printf(" %.2f", f)
	}
	fmt.Println()
	for t, best := range res.BestFreqSoFar {
		fmt.Printf("  iter %2d: best feasible so far %.3f GHz\n", t, best)
	}
	fmt.Printf("  => %d runs under %d licenses; best feasible %.3f GHz (area %.1f um^2)\n",
		res.TotalRuns, res.PeakLicenses, res.BestFreqGHz, res.BestArea)
}
