// METRICS pipeline: stand up the collection server, instrument a flow
// campaign so every tool step transmits XML records over HTTP, then
// mine the store for option guidance and feed it back into the next
// runs — the full Fig. 11 loop, including the Stage-4 adaptive agent.
package main

import (
	"fmt"

	"repro"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/metrics"
)

func main() {
	// Collection server on an ephemeral port.
	srv := metrics.NewServer(nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("METRICS server on %s\n\n", addr)
	tx := metrics.NewTransmitter("http://" + addr)

	// An instrumented campaign over a ladder of targets.
	design := repro.NewDesign(repro.DefaultLibrary(), repro.TinyDesign(5))
	probe := repro.RunFlow(design, repro.FlowOptions{TargetFreqGHz: 0.3, Seed: 1})
	fmax := probe.MaxFreqGHz
	for i, f := range []float64{fmax * 0.6, fmax * 0.8, fmax * 0.95, fmax * 1.1} {
		for s := 0; s < 3; s++ {
			flow.RunObserved(design, flow.Options{TargetFreqGHz: f, Seed: int64(i*10 + s)}, tx)
		}
	}
	sent, failed := tx.Counts()
	fmt.Printf("campaign: %d records transmitted (%d failed), server holds %d\n\n",
		sent, failed, srv.Store.Len())

	// Mining: sensitivities, best options, achievable frequency.
	miner := metrics.Miner{Store: srv.Store}
	if corr, err := miner.Sensitivity("synth", "target_freq_ghz", "area"); err == nil {
		fmt.Printf("mined sensitivity target->area: %+.3f\n", corr)
	}
	if best, ok := miner.BestTargetFreq(design.Name); ok {
		fmt.Printf("best met target so far:        %.3f GHz\n", best)
	}
	if lo, hi, err := miner.PrescribeFreqRange(design.Name); err == nil {
		fmt.Printf("prescribed achievable range:   %.3f - %.3f GHz\n", lo, hi)
	}

	// Stage 4: the adaptive agent closes the loop, retuning its own
	// options from the miner after every run.
	fmt.Println("\nadaptive agent (starts too aggressive, self-corrects):")
	agent := core.Agent{
		Design: design,
		Store:  srv.Store,
		Start:  repro.FlowOptions{TargetFreqGHz: fmax * 1.4, Seed: 100},
	}
	for _, round := range agent.RunRounds(5) {
		fmt.Printf("  round %d: target %.3f GHz -> met=%t (WNS %.1f ps)\n",
			round.Round, round.TargetFreqGHz, round.Met, round.WNSPs)
	}
}
