// Enterprise view: the paper's cost argument end to end. The ITRS cost
// model shows why design cost explodes without design-technology
// innovation; project-level scheduling (ref [1]) shows what better
// resource allocation buys; and a fleet of robot engineers implements
// the portfolio's blocks with no human in the loop — the "24-hour,
// no-human" design shop the DARPA IDEA program calls for.
package main

import (
	"fmt"

	"repro"
	"repro/internal/costmodel"
	"repro/internal/schedule"
)

func main() {
	// 1. The economics: what one SOC costs with and without DT
	// innovation delivered on time.
	p := costmodel.Default()
	inn := costmodel.DefaultInnovations()
	withDT := costmodel.Project(p, inn, 2026, 2026, 3000)[0]
	noDT := costmodel.Project(p, inn, 2026, 2026, 2013)[0]
	fmt.Printf("2026 SOC design cost: $%.0fM with DT innovation, $%.0fM without\n",
		withDT.DesignCostUSD/1e6, noDT.DesignCostUSD/1e6)

	// 2. The schedule: allocate 10 engineers across a 4-project
	// portfolio; deadline-aware allocation versus first-come.
	projects := []schedule.Project{
		{Name: "soc-a", Release: 0, Due: 24, WorkEM: 60, MaxParallel: 6},
		{Name: "soc-b", Release: 2, Due: 8, WorkEM: 30, MaxParallel: 8},
		{Name: "ip-c", Release: 4, Due: 10, WorkEM: 20, MaxParallel: 4},
		{Name: "deriv-d", Release: 6, Due: 14, WorkEM: 24, MaxParallel: 6},
	}
	outs, err := schedule.Compare(projects, 10)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nportfolio scheduling (10 engineers):")
	for _, o := range outs {
		fmt.Printf("  %-15s penalties $%.1fM, %d late projects, %.0f%% utilization\n",
			o.Policy, o.PenaltyUSD/1e6, o.LateProjects, o.Utilization*100)
	}

	// 3. The execution: one robot engineer per block, no humans. Each
	// robot drives its block to timing closure and reports.
	fmt.Println("\nrobot fleet implementing the blocks:")
	lib := repro.DefaultLibrary()
	for i, name := range []string{"soc-a-block", "soc-b-block", "ip-c-block"} {
		design := repro.NewDesign(lib, repro.TinyDesign(int64(10+i)))
		probe := repro.RunFlow(design, repro.FlowOptions{TargetFreqGHz: 0.3, Seed: int64(i)})
		robot := repro.Robot{
			Design: design,
			Base:   repro.FlowOptions{TargetFreqGHz: probe.MaxFreqGHz * 1.5, Seed: int64(i)},
		}
		out := robot.Execute()
		status := "CLOSED"
		if !out.Succeeded {
			status = "OPEN"
		}
		fmt.Printf("  %-12s %s at %.3f GHz after %d attempts (runtime proxy %.0f)\n",
			name, status, out.Final.Options.TargetFreqGHz, len(out.Attempts), out.RuntimeProxy)
	}
}
