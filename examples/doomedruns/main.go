// Doomed runs: train the MDP "blackjack strategy card" on router
// logfiles from artificial layouts, evaluate it on an embedded-CPU
// corpus (the paper's Table-1 protocol), and then use it live as a
// Stage-3 flow monitor that stops hopeless routing runs early.
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/logfile"
	"repro/internal/mdp"
)

func main() {
	// Corpora: training on artificial layouts, testing on the
	// embedded-CPU proxy, as in the paper.
	train, test := repro.Corpora(repro.Small, 1)
	ts, xs := logfile.Summarize(train), logfile.Summarize(test)
	fmt.Printf("training corpus: %d runs (%d doomed); testing: %d runs (%d doomed)\n\n",
		ts.Runs, ts.Doomed, xs.Runs, xs.Doomed)

	// The strategy card (Fig. 10).
	card := mdp.BuildCard(train, mdp.CardConfig{})
	fmt.Println("strategy card (S/s = STOP, ./, = GO; lowercase = fill-in):")
	fmt.Print(card.String())

	// The consecutive-STOP error table (Table 1).
	fmt.Println("\nerrors on the test corpus:")
	for _, k := range []int{1, 2, 3} {
		ev := card.Evaluate(test, k)
		fmt.Printf("  %d consecutive STOPs: total %.2f%%  type1=%d  type2=%d  iterations saved=%d/%d\n",
			k, ev.TotalErrorPct, ev.Type1, ev.Type2, ev.IterationsSaved, ev.IterationsTotal)
	}

	// Live Stage-3 supervision of congested flow runs.
	fmt.Println("\nlive monitoring of congested flow runs (3 consecutive STOPs):")
	design := repro.NewDesign(repro.DefaultLibrary(), repro.TinyDesign(3))
	runner := core.PrunedRunner{Card: card, ConsecutiveStops: 3}
	study := core.StudyPruning(design, flow.Options{
		TargetFreqGHz: 0.3, Seed: 9, TracksPerEdge: 1.3, // starved routing supply
	}, runner, 8)
	fmt.Printf("  %d runs, %d doomed, %d of the doomed stopped early\n",
		study.Runs, study.DoomedRuns, study.DoomedStopped)
	fmt.Printf("  schedule saved: %.1f%% (runtime %.1f -> %.1f)\n",
		study.SavedRuntimePct, study.RuntimeUnpruned, study.RuntimePruned)
	if study.Type1 > 0 {
		fmt.Printf("  (%d successful run(s) stopped by mistake — Type 1)\n", study.Type1)
	}
	if study.DoomedRuns == 0 {
		fmt.Fprintln(os.Stderr, "note: no doomed runs at this congestion level; increase starvation")
	}
}
