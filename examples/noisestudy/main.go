// Noise study: measure SP&R implementation noise (the paper's Fig. 3).
// The same design, same options, different run seeds scatter in area;
// the scatter grows near the maximum achievable frequency and its
// distribution is essentially Gaussian (Jarque-Bera).
package main

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/netlist"
	"repro/internal/noise"
)

func main() {
	lib := repro.DefaultLibrary()
	design := repro.NewDesign(lib, netlist.Tiny(11))

	study := noise.Sweep(design, noise.Config{Seeds: 24, Steps: 7, Seed: 1})
	fmt.Printf("design %s, fmax ~ %.3f GHz\n\n", study.Design, study.FMax)
	fmt.Printf("%-12s %12s %9s %8s %8s\n", "target(GHz)", "mean area", "std", "met%", "JB p")
	for _, p := range study.Points {
		fmt.Printf("%-12.3f %12.2f %9.3f %7.0f%% %8.3f\n",
			p.TargetFreqGHz, p.MeanArea, p.StdArea, p.MetFrac*100, p.JBPValue)
	}
	fmt.Printf("\nnoise grows toward fmax: %t\n", study.NoiseGrowsTowardFMax())
	fmt.Printf("largest adjacent-target area jump: %.2f%%\n", study.AreaJumpPct())

	// Fig. 3 (right): histogram of the near-fmax samples with the
	// fitted Gaussian.
	idx := len(study.Points) - 1
	g, h := study.GaussianAt(idx, 8)
	fmt.Printf("\narea histogram at %.3f GHz (mu=%.2f sigma=%.3f):\n",
		study.Points[idx].TargetFreqGHz, g.Mu, g.Sigma)
	for b, c := range h.Counts {
		lo := h.Min + float64(b)*h.Width
		fmt.Printf("  %9.2f | %s\n", lo, strings.Repeat("#", c))
	}
}
