// Package repro reproduces "Reducing Time and Effort in IC
// Implementation: A Roadmap of Challenges and Solutions" (A. B. Kahng,
// DAC 2018) as a working system: a simulated RTL-to-GDSII SP&R flow and
// every technique the paper describes on top of it — multi-armed-bandit
// tool orchestration, MDP doomed-run prediction, go-with-the-winners and
// adaptive multistart, ML analysis correlation, implementation-noise
// characterization, the METRICS collection/mining infrastructure, and
// the ITRS design-cost roadmap model.
//
// This file is the facade: the small, stable API a downstream user
// needs. The per-figure experiment harness lives in experiments.go; the
// full machinery is under internal/.
package repro

import (
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/cellib"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/netlist"
)

// Library is the standard-cell library type used across the flow.
type Library = cellib.Library

// Design is a gate-level netlist.
type Design = netlist.Netlist

// DesignSpec parameterizes the synthetic design generator.
type DesignSpec = netlist.Spec

// FlowOptions are the SP&R flow knobs (one point of the option tree).
type FlowOptions = flow.Options

// FlowResult is a complete SP&R run outcome.
type FlowResult = flow.Result

// Constraints is the QOR acceptance box (area/power).
type Constraints = flow.Constraints

// DefaultLibrary returns the 14nm-class standard-cell library.
func DefaultLibrary() *Library { return cellib.Default14nm() }

// NewDesign generates a synthetic design from a spec.
func NewDesign(lib *Library, spec DesignSpec) *Design { return netlist.Generate(lib, spec) }

// PulpinoProxy returns the PULPino-like proxy design spec (the paper's
// Fig. 3 / Fig. 7 testcase, scaled for laptop runtime).
func PulpinoProxy(seed int64) DesignSpec { return netlist.PulpinoProxy(seed) }

// EmbeddedCPU returns the embedded-CPU proxy spec (doomed-run test
// corpus source).
func EmbeddedCPU(seed int64) DesignSpec { return netlist.EmbeddedCPU(seed) }

// Artificial returns the artificial-layout spec (doomed-run training
// corpus source).
func Artificial(seed int64) DesignSpec { return netlist.Artificial(seed) }

// TinyDesign returns a minimal spec for experimentation and tests.
func TinyDesign(seed int64) DesignSpec { return netlist.Tiny(seed) }

// RunFlow executes the full SP&R flow (synthesis, placement, CTS,
// global+detailed routing, signoff STA) on a design.
func RunFlow(design *Design, opts FlowOptions) *FlowResult { return flow.Run(design, opts) }

// Robot is the Stage-1 no-human-in-the-loop flow executor.
type Robot = core.Robot

// SearchConfig configures the Stage-2 orchestrated bandit search.
type SearchConfig = core.SearchConfig

// SearchResult is the orchestrated search outcome.
type SearchResult = core.SearchResult

// Search runs N concurrent robot engineers over flow targets under a
// license pool, steered by a multi-armed bandit (the Fig. 7 method).
func Search(design *Design, base FlowOptions, cons Constraints, cfg SearchConfig) (*SearchResult, error) {
	return core.Search(design, base, cons, cfg)
}

// FlowCache memoizes flow results by (design, options) content; share
// one across studies that revisit the same option points.
type FlowCache = campaign.Cache

// NewFlowCache creates a flow-result cache (capacity <= 0 = unbounded).
func NewFlowCache(capacity int) *FlowCache { return campaign.NewCache(capacity) }

// workers is the package-wide concurrent-run limit for the experiment
// harnesses (0 = one worker per CPU).
var workers atomic.Int64

// SetWorkers caps concurrent runs in the experiment harnesses (n <= 0
// restores the default: one worker per CPU). Every harness draws its
// per-run seeds deterministically before fanning out, so the worker
// count changes wall-clock time only, never results.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// WorkerCount reports the configured limit (0 = one per CPU).
func WorkerCount() int { return int(workers.Load()) }

// kernelPlaceWorkers/kernelRouteTiles are the process-wide parallel-
// kernel selections the corpus harnesses thread into substrate builds.
var (
	kernelPlaceWorkers atomic.Int64
	kernelRouteTiles   atomic.Int64
)

// SetKernelParallel selects the parallel physical-design kernels for
// experiment substrate construction: placeWorkers > 0 turns on the
// speculative parallel annealer, routeTiles > 1 the region-sharded
// global router. Zeroes keep the historical serial kernels (and the
// historical corpus journal keys). Unlike SetWorkers this changes
// results — the parallel kernels produce different, equally valid
// placements and congestion maps — which is why it is a separate,
// explicit opt-in.
func SetKernelParallel(placeWorkers, routeTiles int) {
	kernelPlaceWorkers.Store(int64(max(placeWorkers, 0)))
	kernelRouteTiles.Store(int64(max(routeTiles, 0)))
}

// KernelParallel reports the configured parallel-kernel selections.
func KernelParallel() (placeWorkers, routeTiles int) {
	return int(kernelPlaceWorkers.Load()), int(kernelRouteTiles.Load())
}
